//! Rendering of the reproduced evaluation: Tables 2–6, the §6 headline
//! aggregates, the `livc` invocation-graph study, and the
//! context-sensitivity ablation.
//!
//! Every entry point has a `*_jobs` variant taking a worker count; the
//! default variants use [`default_jobs`]. The suite programs are
//! analysed concurrently (see [`crate::parallel`]) but reported in
//! paper order, so the rendered tables are identical for any job count.

use crate::parallel::{catch_panic, default_jobs, par_join3, par_join4, par_map};
use crate::{all_benchmarks, analyse, Analysed, Benchmark, LIVC, PANIC_BENCH_NAME, SUITE};
use pta_core::baseline::{
    address_taken_functions, andersen, build_ig_with_strategy, insensitive, steensgaard,
    CallGraphStrategy,
};
use pta_core::stats::{self, BenchmarkStats};
use pta_core::{AnalysisConfig, AnalysisError, Def, Fidelity, PtSet, PtaError};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Wall-clock time of one benchmark's analysis + statistics pass.
#[derive(Debug, Clone)]
pub struct BenchTiming {
    /// Benchmark name.
    pub name: String,
    /// Time spent analysing it (one worker's wall clock). In store
    /// mode, the cold context-sensitive analysis alone (so the cold and
    /// warm columns measure the same work).
    pub duration: Duration,
    /// Store mode only: wall clock of the warm (snapshot-seeded)
    /// re-analysis of the same program.
    pub warm: Option<Duration>,
}

/// One successfully analysed benchmark with its statistics and the
/// provenance of the numbers (which rung of the degradation ladder
/// produced them).
#[derive(Debug)]
pub struct AnalysedRow {
    /// The analysed benchmark.
    pub analysed: Analysed,
    /// Its statistics (Tables 2–6 inputs).
    pub stats: BenchmarkStats,
    /// Which analysis produced the result.
    pub fidelity: Fidelity,
    /// The ladder rungs that failed before `fidelity` succeeded.
    pub degradations: Vec<(Fidelity, AnalysisError)>,
    /// Diagnostics the lint pass derived from the points-to facts.
    pub lint: Vec<pta_lint::Diagnostic>,
    /// Aggregated trace metrics, when the run was profiled (the
    /// `--profile` flag or a `--json` artifact). `None` on the default
    /// path so plain table runs pay no tracing cost.
    pub metrics: Option<pta_core::TraceMetrics>,
}

/// How a suite row failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteErrorKind {
    /// The worker panicked (caught; siblings unaffected).
    Panic,
    /// The front end rejected the program.
    Frontend,
    /// The analysis failed unrecoverably (ladder included).
    Analysis,
}

/// A benchmark that produced no analysis: the row survives into the
/// report (deterministically, in paper order) so one bad program shows
/// up as one failed line instead of killing the whole run.
#[derive(Debug, Clone)]
pub struct SuiteError {
    /// Benchmark name.
    pub name: String,
    /// Failure category.
    pub kind: SuiteErrorKind,
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            SuiteErrorKind::Panic => "panic",
            SuiteErrorKind::Frontend => "frontend error",
            SuiteErrorKind::Analysis => "analysis error",
        };
        write!(f, "{}: {kind}: {}", self.name, self.message)
    }
}

/// One row of the suite report: analysed or failed.
#[derive(Debug)]
pub enum SuiteRow {
    /// The benchmark was analysed (possibly at degraded fidelity).
    Analysed(Box<AnalysedRow>),
    /// The benchmark produced no result.
    Failed(SuiteError),
}

impl SuiteRow {
    /// The benchmark name of either variant.
    pub fn name(&self) -> &str {
        match self {
            SuiteRow::Analysed(r) => r.analysed.bench.name,
            SuiteRow::Failed(e) => &e.name,
        }
    }

    /// The analysed row, when there is one.
    pub fn as_analysed(&self) -> Option<&AnalysedRow> {
        match self {
            SuiteRow::Analysed(r) => Some(r),
            SuiteRow::Failed(_) => None,
        }
    }
}

/// The whole suite, analysed, with its statistics.
#[derive(Debug)]
pub struct SuiteReport {
    /// Per-benchmark rows (paper order), failed ones included.
    pub rows: Vec<SuiteRow>,
    /// Per-benchmark timings (paper order).
    pub timings: Vec<BenchTiming>,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock time of the whole suite run.
    pub wall: Duration,
}

/// Analyses the full 17-program suite with [`default_jobs`] workers.
/// Never fails: a crashing or budget-exhausted benchmark becomes a
/// failed or degraded row.
pub fn run_suite() -> SuiteReport {
    run_suite_jobs(default_jobs())
}

/// [`run_suite`] with an explicit worker count (`1` forces the serial
/// path).
pub fn run_suite_jobs(jobs: usize) -> SuiteReport {
    run_benchmarks_cfg(SUITE, jobs, AnalysisConfig::default())
}

/// The suite driver over an explicit benchmark list and configuration.
///
/// Fault isolation: each benchmark's job runs under `catch_unwind`, so
/// a panic in one worker yields a [`SuiteRow::Failed`] row while every
/// sibling completes normally. Budget exhaustion degrades through
/// [`pta_core::analyze_resilient`] and tags the row's [`Fidelity`].
/// Rows come back in input order for every job count.
pub fn run_benchmarks_cfg(
    benches: &[Benchmark],
    jobs: usize,
    config: AnalysisConfig,
) -> SuiteReport {
    run_benchmarks_opts(benches, jobs, config, false)
}

/// [`run_benchmarks_cfg`] with opt-in profiling: with `profile` set,
/// each benchmark's context-sensitive analysis runs with a
/// [`pta_core::TraceMetrics`] sink attached and the aggregated counters
/// land on [`AnalysedRow::metrics`] (rendered by
/// [`SuiteReport::profile_table`] and embedded in
/// [`SuiteReport::timings_json`]). The counter-valued metrics are
/// deterministic for every job count.
pub fn run_benchmarks_opts(
    benches: &[Benchmark],
    jobs: usize,
    config: AnalysisConfig,
    profile: bool,
) -> SuiteReport {
    run_benchmarks_store(benches, jobs, config, profile, None)
}

/// [`run_benchmarks_opts`] with an optional fact-store directory. In
/// store mode each benchmark runs the full-fidelity analysis twice —
/// once cold (recorded), once warm from the snapshot the cold run just
/// wrote to `store_dir/<name>.ptas` — and the timing row carries both
/// wall clocks. The warm result is replayed seeds only when it matches
/// the cold one's mode guarantees; a benchmark whose recorded run
/// fails its budget falls back to the ordinary resilient path (no
/// snapshot, no warm column). `profile` metrics are collected only on
/// the non-store path.
pub fn run_benchmarks_store(
    benches: &[Benchmark],
    jobs: usize,
    config: AnalysisConfig,
    profile: bool,
    store_dir: Option<&std::path::Path>,
) -> SuiteReport {
    let start = Instant::now();
    let results = par_map(jobs, benches, |b| {
        let t0 = Instant::now();
        let (row, timed) = match catch_panic(|| match store_dir {
            Some(dir) => suite_job_store(*b, config.clone(), profile, dir),
            None => suite_job(*b, config.clone(), profile).map(|r| (r, None)),
        }) {
            Ok(Ok((row, timed))) => (SuiteRow::Analysed(Box::new(row)), timed),
            Ok(Err(e)) => {
                let kind = match &e {
                    PtaError::Frontend(_) => SuiteErrorKind::Frontend,
                    PtaError::Analysis(_) => SuiteErrorKind::Analysis,
                };
                (
                    SuiteRow::Failed(SuiteError {
                        name: b.name.to_owned(),
                        kind,
                        message: e.to_string(),
                    }),
                    None,
                )
            }
            Err(msg) => (
                SuiteRow::Failed(SuiteError {
                    name: b.name.to_owned(),
                    kind: SuiteErrorKind::Panic,
                    message: msg,
                }),
                None,
            ),
        };
        let timing = match timed {
            Some((cold, warm)) => (cold, Some(warm)),
            None => (t0.elapsed(), None),
        };
        (row, timing)
    });
    let mut rows = Vec::new();
    let mut timings = Vec::new();
    for (row, (d, warm)) in results {
        timings.push(BenchTiming {
            name: row.name().to_owned(),
            duration: d,
            warm,
        });
        rows.push(row);
    }
    SuiteReport {
        rows,
        timings,
        jobs: jobs.max(1),
        wall: start.elapsed(),
    }
}

/// One benchmark's full job: compile, analyse through the degradation
/// ladder, compute statistics.
fn suite_job(b: Benchmark, config: AnalysisConfig, profile: bool) -> Result<AnalysedRow, PtaError> {
    if b.name == PANIC_BENCH_NAME {
        panic!("deliberate suite-job panic (fault-isolation test hook)");
    }
    let ir = pta_simple::compile(b.source)?;
    let mut metrics = profile.then(pta_core::TraceMetrics::new);
    let outcome = match &mut metrics {
        Some(m) => pta_core::analyze_resilient_traced(&ir, config, m)?,
        None => pta_core::analyze_resilient(&ir, config)?,
    };
    let mut analysed = Analysed {
        bench: b,
        ir,
        result: outcome.result,
    };
    let stats = stats::compute(b.name, b.source, &analysed.ir, &mut analysed.result);
    let lint = pta_lint::lint_ir(
        &analysed.ir,
        &analysed.result,
        outcome.fidelity,
        &pta_lint::LintOptions::default(),
    );
    Ok(AnalysedRow {
        analysed,
        stats,
        fidelity: outcome.fidelity,
        degradations: outcome.degradations,
        lint,
        metrics,
    })
}

/// The store-mode job: a timed cold recorded run, a snapshot written
/// to `dir/<name>.ptas`, and a timed warm replay from that snapshot.
/// Returns the cold and warm analysis wall clocks alongside the row.
/// A budget-failed recorded run falls back to [`suite_job`] (resilient
/// ladder, no snapshot, no warm timing).
fn suite_job_store(
    b: Benchmark,
    config: AnalysisConfig,
    profile: bool,
    dir: &std::path::Path,
) -> Result<(AnalysedRow, Option<(Duration, Duration)>), PtaError> {
    if b.name == PANIC_BENCH_NAME {
        panic!("deliberate suite-job panic (fault-isolation test hook)");
    }
    let ir = pta_simple::compile(b.source)?;
    let t_cold = Instant::now();
    let run = match pta_core::analyze_recorded(&ir, config.clone()) {
        Ok(run) => run,
        Err(_) => return suite_job(b, config, profile).map(|r| (r, None)),
    };
    let cold = t_cold.elapsed();
    let lint = pta_lint::lint_ir(
        &ir,
        &run.result,
        Fidelity::ContextSensitive,
        &pta_lint::LintOptions::default(),
    );
    let snap = pta_store::Snapshot::build(&ir, &config, &run, &lint);
    let path = dir.join(format!("{}.ptas", b.name));
    if let Err(e) = pta_store::save(&path, &snap) {
        eprintln!("report: cannot write snapshot for {}: {e}", b.name);
    }
    let t_warm = Instant::now();
    let warm = pta_store::analyze_incremental(&ir, &config, Some(&snap))?;
    let warm_time = t_warm.elapsed();
    debug_assert!(matches!(warm.mode, pta_store::WarmMode::Warm { .. }));
    let mut analysed = Analysed {
        bench: b,
        ir,
        result: run.result,
    };
    let stats = stats::compute(b.name, b.source, &analysed.ir, &mut analysed.result);
    Ok((
        AnalysedRow {
            analysed,
            stats,
            fidelity: Fidelity::ContextSensitive,
            degradations: Vec::new(),
            lint,
            metrics: None,
        },
        Some((cold, warm_time)),
    ))
}

impl SuiteReport {
    /// The successfully analysed rows, in paper order.
    pub fn analysed_rows(&self) -> impl Iterator<Item = &AnalysedRow> {
        self.rows.iter().filter_map(SuiteRow::as_analysed)
    }

    /// The failed rows, in paper order.
    pub fn failures(&self) -> Vec<&SuiteError> {
        self.rows
            .iter()
            .filter_map(|r| match r {
                SuiteRow::Failed(e) => Some(e),
                SuiteRow::Analysed(_) => None,
            })
            .collect()
    }

    /// The rows that degraded below full context-sensitive fidelity.
    pub fn degraded(&self) -> Vec<&AnalysedRow> {
        self.analysed_rows()
            .filter(|r| !r.fidelity.is_full())
            .collect()
    }

    /// True when every row analysed at full fidelity.
    pub fn is_clean(&self) -> bool {
        self.failures().is_empty() && self.degraded().is_empty()
    }

    /// Renders the failure/degradation summary (empty string when
    /// clean).
    pub fn render_failures(&self) -> String {
        let mut out = String::new();
        for e in self.failures() {
            let _ = writeln!(out, "FAILED   {e}");
        }
        for r in self.degraded() {
            let _ = writeln!(
                out,
                "DEGRADED {}: answered by the {} fallback ({})",
                r.analysed.bench.name,
                r.fidelity,
                r.degradations
                    .iter()
                    .map(|(f, e)| format!("{f}: {e}"))
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
        out
    }

    /// Renders Table 2.
    pub fn table2(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>8} {:>8} {:>8}  Description",
            "Benchmark", "Lines", "#stmts", "Min#var", "Max#var"
        );
        for row in &self.rows {
            let Some(r) = row.as_analysed() else {
                failed_line(&mut out, row);
                continue;
            };
            let (a, s) = (&r.analysed, &r.stats);
            let _ = writeln!(
                out,
                "{:<10} {:>6} {:>8} {:>8} {:>8}  {}",
                s.t2.name,
                s.t2.lines,
                s.t2.simple_stmts,
                s.t2.min_vars,
                s.t2.max_vars,
                a.bench.description
            );
        }
        out
    }

    /// Renders Table 3 (each multi-column entry as `scalar/array`).
    pub fn table3(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>7} {:>7} {:>7} {:>7} {:>5} {:>6} {:>7} {:>6} {:>5} {:>5}",
            "Benchmark",
            "1D",
            "1P",
            "2P",
            "3P",
            ">=4P",
            "ind",
            "ScRep",
            "ToStk",
            "ToHp",
            "Tot",
            "Avg"
        );
        for row in &self.rows {
            let Some(r) = row.as_analysed() else {
                failed_line(&mut out, row);
                continue;
            };
            let t = &r.stats.t3;
            let pair = |p: (usize, usize)| format!("{}/{}", p.0, p.1);
            let _ = writeln!(
                out,
                "{:<10} {:>7} {:>7} {:>7} {:>7} {:>7} {:>5} {:>6} {:>7} {:>6} {:>5} {:>5.2}{}",
                t.name,
                pair(t.one_d),
                pair(t.one_p),
                pair(t.two_p),
                pair(t.three_p),
                pair(t.four_p),
                t.ind_refs,
                t.scalar_rep,
                t.to_stack,
                t.to_heap,
                t.tot(),
                t.avg(),
                fidelity_marker(r)
            );
        }
        let agg = self.summary();
        let _ = writeln!(
            out,
            "{:<10} overall avg {:.2}; {:.2}% definite-single; {:.2}% replaceable; {:.2}% single-target; {:.2}% heap pairs",
            "TOTAL", agg.overall_avg, agg.pct_definite, agg.pct_replaceable, agg.pct_single,
            agg.pct_heap
        );
        out
    }

    /// Renders Table 4.
    pub fn table4(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} | {:>5} {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5} {:>5}",
            "Benchmark", "f.lo", "f.gl", "f.fp", "f.sy", "t.lo", "t.gl", "t.fp", "t.sy"
        );
        for row in &self.rows {
            let Some(r) = row.as_analysed() else {
                failed_line(&mut out, row);
                continue;
            };
            let t = &r.stats.t4;
            let _ = writeln!(
                out,
                "{:<10} | {:>5} {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5} {:>5}",
                t.name,
                t.from.lo,
                t.from.gl,
                t.from.fp,
                t.from.sy,
                t.to.lo,
                t.to.gl,
                t.to.fp,
                t.to.sy
            );
        }
        out
    }

    /// Renders Table 5.
    pub fn table5(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>6} {:>6}",
            "Benchmark", "Stk->Stk", "Stk->Hp", "Hp->Hp", "Hp->Stk", "Avg", "Max"
        );
        for row in &self.rows {
            let Some(r) = row.as_analysed() else {
                failed_line(&mut out, row);
                continue;
            };
            let t = &r.stats.t5;
            let _ = writeln!(
                out,
                "{:<10} {:>9} {:>9} {:>9} {:>9} {:>6.1} {:>6}",
                t.name,
                t.stack_to_stack,
                t.stack_to_heap,
                t.heap_to_heap,
                t.heap_to_stack,
                t.avg(),
                t.max_per_stmt
            );
        }
        out
    }

    /// Renders Table 6.
    pub fn table6(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>9} {:>6} {:>4} {:>4} {:>6} {:>6}",
            "Benchmark", "ig-nodes", "call-site", "#fns", "R", "A", "Avgc", "Avgf"
        );
        for row in &self.rows {
            let Some(r) = row.as_analysed() else {
                failed_line(&mut out, row);
                continue;
            };
            let t = &r.stats.t6;
            let _ = writeln!(
                out,
                "{:<10} {:>8} {:>9} {:>6} {:>4} {:>4} {:>6.2} {:>6.2}",
                t.name,
                t.ig_nodes,
                t.call_sites,
                t.functions,
                t.recursive,
                t.approximate,
                t.avg_per_call_site(),
                t.avg_per_function()
            );
        }
        out
    }

    /// Renders the per-benchmark timing table (wall clock; timings vary
    /// run to run and are deliberately kept out of Tables 2–6).
    pub fn timings_table(&self) -> String {
        let mut out = String::new();
        let warm_mode = self.timings.iter().any(|t| t.warm.is_some());
        if warm_mode {
            let _ = writeln!(
                out,
                "{:<10} {:>10} {:>10} {:>8}",
                "Benchmark", "cold-ms", "warm-ms", "speedup"
            );
        } else {
            let _ = writeln!(out, "{:<10} {:>10}", "Benchmark", "ms");
        }
        for t in &self.timings {
            let cold = t.duration.as_secs_f64() * 1e3;
            match (warm_mode, t.warm) {
                (true, Some(w)) => {
                    let warm = w.as_secs_f64() * 1e3;
                    let speedup = if warm > 0.0 {
                        cold / warm
                    } else {
                        f64::INFINITY
                    };
                    let _ = writeln!(
                        out,
                        "{:<10} {:>10.3} {:>10.3} {:>7.2}x",
                        t.name, cold, warm, speedup
                    );
                }
                (true, None) => {
                    let _ = writeln!(out, "{:<10} {:>10.3} {:>10} {:>8}", t.name, cold, "-", "-");
                }
                (false, _) => {
                    let _ = writeln!(out, "{:<10} {:>10.3}", t.name, cold);
                }
            }
        }
        let _ = writeln!(
            out,
            "{:<10} {:>10.3}   ({} worker{})",
            "WALL",
            self.wall.as_secs_f64() * 1e3,
            self.jobs,
            if self.jobs == 1 { "" } else { "s" }
        );
        out
    }

    /// The timings as a JSON document (the CI `BENCH_1.json` artifact),
    /// stamped with the snapshot/trace schema version. Each benchmark
    /// entry carries its result provenance: a `"fidelity"` tag for
    /// analysed rows, `"failed"` plus an `"error"` message for failed
    /// ones, and a `"warm_ms"` field in store mode. Runs with
    /// `--prune-liveness` add a per-benchmark `"prune"` object
    /// (seen/pruned pair counters and the sparsity percentage, E17).
    pub fn timings_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{}\",\"jobs\":{},\"wall_ms\":{:.3},\"failures\":{},\"benchmarks\":[",
            pta_core::SCHEMA_VERSION,
            self.jobs,
            self.wall.as_secs_f64() * 1e3,
            self.failures().len()
        );
        for (i, (t, row)) in self.timings.iter().zip(&self.rows).enumerate() {
            let _ = write!(
                out,
                "{}{{\"name\":\"{}\",\"ms\":{:.3},",
                if i == 0 { "" } else { "," },
                t.name,
                t.duration.as_secs_f64() * 1e3
            );
            if let Some(w) = t.warm {
                let _ = write!(out, "\"warm_ms\":{:.3},", w.as_secs_f64() * 1e3);
            }
            match row {
                SuiteRow::Analysed(r) => {
                    let c = pta_lint::DiagnosticCounts::of(&r.lint);
                    let _ = write!(
                        out,
                        "\"fidelity\":\"{}\",\"diagnostics\":{{\"errors\":{},\"warnings\":{}}}",
                        r.fidelity, c.errors, c.warnings
                    );
                    // Deterministic counters only (TraceMetrics::to_json
                    // excludes timing fields), so the artifact stays
                    // byte-comparable across runs and job counts.
                    if let Some(m) = &r.metrics {
                        let _ = write!(out, ",\"metrics\":{}", m.to_json());
                    }
                    let p = &r.analysed.result.prune;
                    if p.enabled {
                        let _ = write!(
                            out,
                            ",\"prune\":{{\"seen_pairs\":{},\"pruned_pairs\":{},\
                             \"sparsity_pct\":{:.2}}}",
                            p.seen_pairs,
                            p.pruned_pairs,
                            p.sparsity_pct()
                        );
                    }
                    out.push('}');
                }
                SuiteRow::Failed(e) => {
                    let _ = write!(
                        out,
                        "\"failed\":true,\"error\":\"{}\"}}",
                        json_escape(&e.message)
                    );
                }
            }
        }
        out.push_str("]}\n");
        out
    }

    /// [`Self::timings_json`] with a `"serve"` section spliced in.
    /// `serve` is the raw `pta.load.v1` artifact written by
    /// `pta-load --json`; it is parsed, checked for the schema stamp,
    /// and re-rendered canonically so a truncated or foreign file can
    /// never be published inside the bench artifact.
    pub fn timings_json_with_serve(&self, serve: &str) -> Result<String, String> {
        let value = parse_serve_artifact(serve)?;
        let mut out = self.timings_json();
        debug_assert!(out.ends_with("]}\n"));
        out.truncate(out.len() - 2);
        out.push_str(",\"serve\":");
        out.push_str(&value.render());
        out.push_str("}\n");
        Ok(out)
    }

    /// Renders the per-benchmark diagnostics table (the `--lint`
    /// section): error/warning counts plus a per-check breakdown.
    /// Byte-identical for every job count, like the paper tables.
    pub fn lint_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>8}  checks",
            "bench", "errors", "warnings"
        );
        for row in &self.rows {
            let Some(r) = row.as_analysed() else {
                failed_line(&mut out, row);
                continue;
            };
            let c = pta_lint::DiagnosticCounts::of(&r.lint);
            let mut by_check: Vec<(&str, usize)> = Vec::new();
            for d in &r.lint {
                match by_check.iter_mut().find(|(id, _)| *id == d.check_id) {
                    Some((_, n)) => *n += 1,
                    None => by_check.push((d.check_id, 1)),
                }
            }
            by_check.sort();
            let breakdown = if by_check.is_empty() {
                "-".to_owned()
            } else {
                by_check
                    .iter()
                    .map(|(id, n)| format!("{id}:{n}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let _ = writeln!(
                out,
                "{:<10} {:>6} {:>8}  {}{}",
                r.analysed.bench.name,
                c.errors,
                c.warnings,
                breakdown,
                fidelity_marker(r)
            );
        }
        out
    }

    /// Renders the self-profiling table (the `--profile` section):
    /// per-benchmark counters from the trace-metrics layer — memo
    /// hit/miss with hit rate, invocation-graph node counts (which
    /// reconcile exactly with Table 6: both read the final graph), map
    /// volumes, and the deepest map pointer chain. Counter-valued, so
    /// byte-identical for every job count. Rows without metrics (the
    /// run was not profiled, or the benchmark degraded off the
    /// context-sensitive engine) render a `-` marker.
    pub fn profile_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>9} {:>6} {:>8} {:>6} {:>7} {:>10} {:>6}",
            "Benchmark",
            "ig-nodes",
            "memo-hit",
            "miss",
            "hit%",
            "maps",
            "invis",
            "max-chain",
            "steps"
        );
        for row in &self.rows {
            let Some(r) = row.as_analysed() else {
                failed_line(&mut out, row);
                continue;
            };
            let Some(m) = r.metrics.as_ref().filter(|m| m.completed) else {
                let _ = writeln!(
                    out,
                    "{:<10} {:>8} {:>9} {:>6} {:>8} {:>6} {:>7} {:>10} {:>6}{}",
                    r.analysed.bench.name,
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    fidelity_marker(r)
                );
                continue;
            };
            let _ = writeln!(
                out,
                "{:<10} {:>8} {:>9} {:>6} {:>7.1}% {:>6} {:>7} {:>10} {:>6}",
                r.analysed.bench.name,
                m.ig_nodes,
                m.memo_hits,
                m.memo_misses,
                m.hit_rate(),
                m.maps,
                m.invisibles,
                m.max_chain_depth,
                m.steps
            );
        }
        out
    }

    /// Headline aggregates corresponding to the bullet list of §6.
    pub fn summary(&self) -> Summary {
        let mut ind = 0usize;
        let mut one_d = 0usize;
        let mut single = 0usize;
        let mut rep = 0usize;
        let mut to_stack = 0usize;
        let mut to_heap = 0usize;
        for r in self.analysed_rows() {
            let t = &r.stats.t3;
            ind += t.ind_refs;
            one_d += t.one_d.0 + t.one_d.1;
            single += t.one_d.0 + t.one_d.1 + t.one_p.0 + t.one_p.1 + t.zero;
            rep += t.scalar_rep;
            to_stack += t.to_stack;
            to_heap += t.to_heap;
        }
        let tot = to_stack + to_heap;
        let pct = |a: usize, b: usize| {
            if b == 0 {
                0.0
            } else {
                100.0 * a as f64 / b as f64
            }
        };
        Summary {
            ind_refs: ind,
            overall_avg: if ind == 0 {
                0.0
            } else {
                tot as f64 / ind as f64
            },
            pct_definite: pct(one_d, ind),
            pct_single: pct(single, ind),
            pct_replaceable: pct(rep, ind),
            pct_heap: pct(to_heap, tot),
        }
    }
}

/// Appends a table line for a failed row, keeping the table's
/// benchmark column aligned.
fn failed_line(out: &mut String, row: &SuiteRow) {
    if let SuiteRow::Failed(e) = row {
        let _ = writeln!(out, "{:<10} FAILED ({})", e.name, e.message);
    }
}

/// A trailing provenance marker for degraded rows (empty at full
/// fidelity, so clean tables render byte-identically to before).
fn fidelity_marker(r: &AnalysedRow) -> String {
    if r.fidelity.is_full() {
        String::new()
    } else {
        format!("  [{}]", r.fidelity)
    }
}

/// Minimal JSON string escaping for error messages.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses and validates a `pta.load.v1` serve artifact (the file
/// `pta-load --json` writes). Rejects non-JSON input, non-objects, and
/// anything without the right `"schema"` stamp.
pub fn parse_serve_artifact(text: &str) -> Result<pta_store::json::Json, String> {
    let value =
        pta_store::json::parse(text.trim()).map_err(|e| format!("invalid serve JSON: {e}"))?;
    match value.get("schema").and_then(pta_store::json::Json::as_str) {
        Some("pta.load.v1") => Ok(value),
        Some(other) => Err(format!(
            "serve JSON has schema `{other}`, want `pta.load.v1`"
        )),
        None => Err("serve JSON is missing its `schema` stamp".to_owned()),
    }
}

/// Renders the human-readable serve summary (the `--serve-json`
/// section): throughput and latency percentiles from a `pta.load.v1`
/// artifact. Missing fields render as `-` rather than failing, so a
/// schema-compatible artifact from a newer generator still prints.
pub fn serve_table(artifact: &pta_store::json::Json) -> String {
    use pta_store::json::Json;
    let fmt = |v: Option<f64>| -> String {
        match v {
            Some(v) if v.fract() == 0.0 => format!("{}", v as i64),
            Some(v) => format!("{v:.1}"),
            None => "-".to_owned(),
        }
    };
    let num = |key: &str| fmt(artifact.get(key).and_then(Json::as_f64));
    let lat = |key: &str| {
        fmt(artifact
            .get("latency_us")
            .and_then(|l| l.get(key))
            .and_then(Json::as_f64))
    };
    let programs = match artifact.get("programs").and_then(Json::as_arr) {
        Some(items) => items
            .iter()
            .filter_map(Json::as_str)
            .collect::<Vec<_>>()
            .join(" "),
        None => "-".to_owned(),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>10} {:>9} {:>9} {:>9} {:>7}",
        "programs", "queries", "conns", "qps", "p50-us", "p90-us", "p99-us", "errors"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>10} {:>9} {:>9} {:>9} {:>7}",
        programs,
        num("queries"),
        num("conns"),
        num("qps"),
        lat("p50"),
        lat("p90"),
        lat("p99"),
        num("errors"),
    );
    if let Some(v) = artifact.get("verified").and_then(|j| match j {
        Json::Bool(b) => Some(*b),
        _ => None,
    }) {
        let _ = writeln!(
            out,
            "responses {} across connection counts",
            if v {
                "verified byte-identical"
            } else {
                "DIFFER"
            }
        );
    }
    out
}

/// The §6 headline aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Total indirect references across the suite.
    pub ind_refs: usize,
    /// Average locations pointed to per indirect reference (paper: 1.13
    /// overall, ≤ 1.77 per program).
    pub overall_avg: f64,
    /// Percent of indirect references with one definite target
    /// (paper: 28.80%).
    pub pct_definite: f64,
    /// Percent with at most one non-NULL target (paper: 90.76% under
    /// the non-NULL-dereference assumption).
    pub pct_single: f64,
    /// Percent replaceable by direct references (paper: 19.39%).
    pub pct_replaceable: f64,
    /// Percent of used pairs targeting the heap (paper: 27.92%).
    pub pct_heap: f64,
}

/// The `livc` invocation-graph case study (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivcStudy {
    /// Nodes with points-to-driven resolution (paper: 203).
    pub precise_nodes: usize,
    /// Nodes when every indirect call targets all functions (paper: 619).
    pub all_functions_nodes: usize,
    /// Nodes with the address-taken set (paper: 589).
    pub address_taken_nodes: usize,
    /// Total defined functions (paper: 82).
    pub total_functions: usize,
    /// Address-taken functions (paper: 72).
    pub address_taken_functions: usize,
    /// Indirect call sites (paper: 3).
    pub indirect_sites: usize,
}

/// Runs the `livc` study with [`default_jobs`] workers.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn livc_study() -> Result<LivcStudy, PtaError> {
    livc_study_jobs(default_jobs())
}

/// [`livc_study`] with an explicit worker count: the three invocation
/// graphs (points-to driven, all-functions, address-taken) build
/// concurrently.
///
/// # Errors
///
/// As [`livc_study`].
pub fn livc_study_jobs(jobs: usize) -> Result<LivcStudy, PtaError> {
    let ir = pta_simple::compile(LIVC.source)?;
    let (precise, all, at) = par_join3(
        jobs,
        || pta_core::analyze(&ir).map(|r| r.ig.len()),
        || build_ig_with_strategy(&ir, CallGraphStrategy::AllFunctions, 2_000_000).map(|g| g.len()),
        || build_ig_with_strategy(&ir, CallGraphStrategy::AddressTaken, 2_000_000).map(|g| g.len()),
    );
    Ok(LivcStudy {
        precise_nodes: precise?,
        all_functions_nodes: all?,
        address_taken_nodes: at?,
        total_functions: ir.defined_functions().count(),
        address_taken_functions: address_taken_functions(&ir).len(),
        indirect_sites: ir.call_sites.iter().filter(|c| c.indirect).count(),
    })
}

impl LivcStudy {
    /// Renders the study.
    pub fn render(&self) -> String {
        format!(
            "livc function-pointer study (paper: 203 vs 619 vs 589 nodes)\n\
             total functions:            {}\n\
             address-taken functions:    {}\n\
             indirect call sites:        {}\n\
             IG nodes, points-to driven: {}\n\
             IG nodes, all-functions:    {}\n\
             IG nodes, address-taken:    {}\n",
            self.total_functions,
            self.address_taken_functions,
            self.indirect_sites,
            self.precise_nodes,
            self.all_functions_nodes,
            self.address_taken_nodes,
        )
    }
}

/// Precision of one analysis on one benchmark: the average number of
/// non-NULL targets of the dereferenced pointer per indirect reference.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Benchmark name.
    pub name: String,
    /// Context-sensitive (the paper's analysis).
    pub context_sensitive: f64,
    /// Context-insensitive flow-sensitive baseline.
    pub context_insensitive: f64,
    /// Andersen-style flow-insensitive baseline.
    pub andersen: f64,
    /// Steensgaard-style unification baseline (coarsest).
    pub steensgaard: f64,
    /// Percent of indirect references with a definite single target
    /// under the context-sensitive analysis.
    pub definite_cs: f64,
    /// Same under the context-insensitive baseline (contexts merge, so
    /// definite information degrades — the paper's central claim).
    pub definite_ci: f64,
}

/// Compares precision across the suite (context-sensitivity ablation,
/// E11) with [`default_jobs`] workers.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn ablation() -> Result<Vec<AblationRow>, PtaError> {
    ablation_jobs(default_jobs())
}

/// [`ablation`] with an explicit worker count. With `jobs > 1` the
/// benchmarks fan out across workers (each row's four analyses then run
/// on one worker to avoid oversubscription); `jobs = 1` is fully
/// serial.
///
/// # Errors
///
/// As [`ablation`].
pub fn ablation_jobs(jobs: usize) -> Result<Vec<AblationRow>, PtaError> {
    let benches = all_benchmarks();
    par_map(jobs, &benches, |b| ablation_one_jobs(*b, 1))
        .into_iter()
        .collect()
}

/// Ablation for a single benchmark; the context-sensitive analysis and
/// the three baselines run concurrently ([`default_jobs`], capped at 4).
///
/// # Errors
///
/// Propagates analysis failures.
pub fn ablation_one(b: Benchmark) -> Result<AblationRow, PtaError> {
    ablation_one_jobs(b, default_jobs().min(4))
}

/// [`ablation_one`] with an explicit worker count for the four
/// analyses.
///
/// # Errors
///
/// As [`ablation_one`].
pub fn ablation_one_jobs(b: Benchmark, jobs: usize) -> Result<AblationRow, PtaError> {
    let ir = pta_simple::compile(b.source)?;
    // The four analyses are independent given the SIMPLE form.
    let (cs_r, ins_r, and_r, st_r) = par_join4(
        jobs,
        || pta_core::analyze(&ir),
        || insensitive(&ir),
        || andersen(&ir),
        || steensgaard(&ir),
    );
    let mut result = cs_r?;
    let cs = stats::table3(b.name, &ir, &mut result).avg();

    let ins = ins_r?;
    let mut ins_result = pta_core::AnalysisResult {
        locs: ins.locs,
        ig: result.ig.clone(),
        per_stmt: ins.per_stmt,
        exit_set: ins.exit_set,
        warnings: Vec::new(),
        escapes: Vec::new(),
        prune: Default::default(),
    };
    let ci = stats::table3(b.name, &ir, &mut ins_result).avg();
    let t3_ins = stats::table3(b.name, &ir, &mut ins_result);

    let and = and_r?;
    // Andersen has one global solution: count average targets directly.
    let an = {
        let mut and_result = pta_core::AnalysisResult {
            locs: and.locs,
            ig: result.ig.clone(),
            per_stmt: {
                // Use the same global solution at every program point.
                let mut m = std::collections::BTreeMap::new();
                for id in result.per_stmt.keys() {
                    m.insert(*id, and.solution.clone());
                }
                m
            },
            exit_set: and.solution.clone(),
            warnings: Vec::new(),
            escapes: Vec::new(),
            prune: Default::default(),
        };
        stats::table3(b.name, &ir, &mut and_result).avg()
    };

    let st = st_r?;
    // Steensgaard is also a single global solution; materialize its
    // classes as (possible) points-to pairs.
    let se = {
        let mut sol = PtSet::new();
        for s in st.locs.ids() {
            for t in st.targets(s) {
                sol.insert(s, t, Def::P);
            }
        }
        let mut st_result = pta_core::AnalysisResult {
            locs: st.locs,
            ig: result.ig.clone(),
            per_stmt: {
                let mut m = std::collections::BTreeMap::new();
                for id in result.per_stmt.keys() {
                    m.insert(*id, sol.clone());
                }
                m
            },
            exit_set: sol,
            warnings: Vec::new(),
            escapes: Vec::new(),
            prune: Default::default(),
        };
        stats::table3(b.name, &ir, &mut st_result).avg()
    };

    let t3_cs = stats::table3(b.name, &ir, &mut result);
    let pct = |t: &stats::Table3Row| {
        if t.ind_refs == 0 {
            0.0
        } else {
            100.0 * (t.one_d.0 + t.one_d.1) as f64 / t.ind_refs as f64
        }
    };
    Ok(AblationRow {
        name: b.name.to_owned(),
        context_sensitive: cs,
        context_insensitive: ci,
        andersen: an,
        steensgaard: se,
        definite_cs: pct(&t3_cs),
        definite_ci: pct(&t3_ins),
    })
}

/// Renders the ablation table.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>12} {:>10} {:>12} {:>8} {:>8}   (avg targets/ref; %D = definite single target)",
        "Benchmark", "ctx-sens", "ctx-insens", "andersen", "steensgaard", "%D-cs", "%D-ci"
    );
    let mut sums = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>10.2} {:>12.2} {:>10.2} {:>12.2} {:>7.1}% {:>7.1}%",
            r.name,
            r.context_sensitive,
            r.context_insensitive,
            r.andersen,
            r.steensgaard,
            r.definite_cs,
            r.definite_ci
        );
        sums.0 += r.context_sensitive;
        sums.1 += r.context_insensitive;
        sums.2 += r.andersen;
        sums.3 += r.steensgaard;
        sums.4 += r.definite_cs;
        sums.5 += r.definite_ci;
    }
    let n = rows.len().max(1) as f64;
    let _ = writeln!(
        out,
        "{:<10} {:>10.2} {:>12.2} {:>10.2} {:>12.2} {:>7.1}% {:>7.1}%",
        "MEAN",
        sums.0 / n,
        sums.1 / n,
        sums.2 / n,
        sums.3 / n,
        sums.4 / n,
        sums.5 / n
    );
    out
}

/// Extension experiment (E12): precision effect of allocation-site heap
/// naming on the heap-heavy benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapSiteRow {
    /// Benchmark name.
    pub name: String,
    /// Average targets per indirect reference with the single `heap`.
    pub single_heap_avg: f64,
    /// Same with per-allocation-site locations.
    pub heap_sites_avg: f64,
    /// Distinct heap locations under site naming.
    pub sites: usize,
}

/// Runs the heap-site ablation on the heap-using benchmarks with
/// [`default_jobs`] workers.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn heap_site_ablation() -> Result<Vec<HeapSiteRow>, PtaError> {
    heap_site_ablation_jobs(default_jobs())
}

/// [`heap_site_ablation`] with an explicit worker count.
///
/// # Errors
///
/// As [`heap_site_ablation`].
pub fn heap_site_ablation_jobs(jobs: usize) -> Result<Vec<HeapSiteRow>, PtaError> {
    let names = ["hash", "misr", "xref", "sim", "dry", "compress"];
    par_map(jobs, &names, |name| {
        let b = crate::benchmark(name).expect("known benchmark");
        let mut base = analyse(b)?;
        let single = stats::table3(b.name, &base.ir, &mut base.result).avg();
        let cfg = pta_core::AnalysisConfig {
            heap_sites: true,
            ..Default::default()
        };
        let mut sited = crate::analyse_with(b, cfg)?;
        let with_sites = stats::table3(b.name, &sited.ir, &mut sited.result).avg();
        let sites = sited
            .result
            .locs
            .ids()
            .filter(|l| {
                matches!(
                    sited.result.locs.get(*l).base,
                    pta_core::LocBase::HeapSite(_)
                )
            })
            .count();
        Ok(HeapSiteRow {
            name: (*name).to_owned(),
            single_heap_avg: single,
            heap_sites_avg: with_sites,
            sites,
        })
    })
    .into_iter()
    .collect()
}

/// Renders the heap-site ablation.
pub fn render_heap_sites(rows: &[HeapSiteRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>7}   (avg targets per indirect ref)",
        "Benchmark", "single-heap", "heap-sites", "#sites"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>12.2} {:>12.2} {:>7}",
            r.name, r.single_heap_avg, r.heap_sites_avg, r.sites
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_analyses_cleanly() {
        for b in all_benchmarks() {
            let a = analyse(b);
            assert!(a.is_ok(), "{} failed: {:?}", b.name, a.err());
        }
    }

    #[test]
    fn serve_section_embeds_and_renders() {
        let suite = SuiteReport {
            rows: Vec::new(),
            timings: Vec::new(),
            jobs: 1,
            wall: Duration::from_millis(5),
        };
        let artifact = "{\"schema\":\"pta.load.v1\",\"addr\":\"tcp:127.0.0.1:9\",\
             \"programs\":[\"hash\",\"misr\"],\"conns\":4,\"rounds\":2,\"seed\":\"0x1\",\
             \"batch\":1,\"queries\":64,\"ok\":64,\"errors\":0,\"wall_ms\":12,\
             \"qps\":5333.3,\"latency_us\":{\"p50\":80,\"p90\":120,\"p99\":400,\
             \"max\":700},\"verified\":true}";
        let out = suite.timings_json_with_serve(artifact).expect("embed");
        assert!(
            out.contains("\"serve\":{\"schema\":\"pta.load.v1\""),
            "{out}"
        );
        // The combined artifact must still be one well-formed document.
        let whole = pta_store::json::parse(out.trim()).expect("artifact parses");
        let conns = whole
            .get("serve")
            .and_then(|s| s.get("conns"))
            .and_then(pta_store::json::Json::as_f64);
        assert_eq!(conns, Some(4.0));
        // Anything but a stamped pta.load.v1 object is refused.
        assert!(suite.timings_json_with_serve("{}").is_err());
        assert!(suite
            .timings_json_with_serve("{\"schema\":\"other\"}")
            .is_err());
        assert!(suite.timings_json_with_serve("not json").is_err());
        // The human-readable table carries the headline numbers.
        let table = serve_table(&parse_serve_artifact(artifact).unwrap());
        assert!(table.contains("hash misr"), "{table}");
        assert!(table.contains("5333.3"), "{table}");
        assert!(table.contains("verified byte-identical"), "{table}");
    }

    #[test]
    fn livc_study_shape_matches_paper() {
        let s = livc_study().expect("livc study");
        assert_eq!(s.total_functions, 82);
        assert_eq!(s.address_taken_functions, 72);
        assert_eq!(s.indirect_sites, 3);
        // The paper's qualitative result: precise << address-taken <= all.
        assert!(
            s.precise_nodes < s.address_taken_nodes,
            "precise {} !< address-taken {}",
            s.precise_nodes,
            s.address_taken_nodes
        );
        assert!(
            s.address_taken_nodes <= s.all_functions_nodes,
            "address-taken {} !<= all {}",
            s.address_taken_nodes,
            s.all_functions_nodes
        );
    }

    #[test]
    fn heap_site_ablation_runs_and_splits_the_summary() {
        // Note the metric subtlety: splitting the single `heap` summary
        // can RAISE the average target count (a pointer that "pointed to
        // heap" now points to several sites) while improving
        // disambiguation — two pointers to different sites are provably
        // disjoint. The rows document this trade-off.
        let rows = heap_site_ablation().expect("heap-site ablation");
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.sites >= 1, "{}: no allocation sites found", r.name);
            assert!(r.heap_sites_avg >= 1.0 - 1e-9, "{r:?}");
        }
        // At least one benchmark has multiple sites (the split happened).
        assert!(rows.iter().any(|r| r.sites > 1), "{rows:?}");
    }

    #[test]
    fn ablation_orders_precision_on_pointer_benchmark() {
        let r = ablation_one(crate::benchmark("toplev").unwrap()).expect("ablation");
        // Context-sensitive is at least as precise as all three baselines.
        assert!(r.context_sensitive <= r.context_insensitive + 1e-9, "{r:?}");
        assert!(r.context_sensitive <= r.andersen + 1e-9, "{r:?}");
        assert!(r.context_sensitive <= r.steensgaard + 1e-9, "{r:?}");
    }
}
