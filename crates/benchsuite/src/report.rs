//! Rendering of the reproduced evaluation: Tables 2–6, the §6 headline
//! aggregates, the `livc` invocation-graph study, and the
//! context-sensitivity ablation.

use crate::{all_benchmarks, analyse, Analysed, Benchmark, LIVC, SUITE};
use pta_core::baseline::{
    address_taken_functions, andersen, build_ig_with_strategy, insensitive, CallGraphStrategy,
};
use pta_core::stats::{self, BenchmarkStats};
use pta_core::PtaError;
use std::fmt::Write as _;

/// The whole suite, analysed, with its statistics.
#[derive(Debug)]
pub struct SuiteReport {
    /// Per-benchmark analysis and statistics (paper order).
    pub rows: Vec<(Analysed, BenchmarkStats)>,
}

/// Analyses the full 17-program suite and computes all statistics.
///
/// # Errors
///
/// Propagates the first benchmark failure (a suite bug).
pub fn run_suite() -> Result<SuiteReport, PtaError> {
    let mut rows = Vec::new();
    for b in SUITE {
        let mut a = analyse(*b)?;
        let s = stats::compute(b.name, b.source, &a.ir, &mut a.result);
        rows.push((a, s));
    }
    Ok(SuiteReport { rows })
}

impl SuiteReport {
    /// Renders Table 2.
    pub fn table2(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>8} {:>8} {:>8}  Description",
            "Benchmark", "Lines", "#stmts", "Min#var", "Max#var"
        );
        for (a, s) in &self.rows {
            let _ = writeln!(
                out,
                "{:<10} {:>6} {:>8} {:>8} {:>8}  {}",
                s.t2.name, s.t2.lines, s.t2.simple_stmts, s.t2.min_vars, s.t2.max_vars,
                a.bench.description
            );
        }
        out
    }

    /// Renders Table 3 (each multi-column entry as `scalar/array`).
    pub fn table3(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>7} {:>7} {:>7} {:>7} {:>5} {:>6} {:>7} {:>6} {:>5} {:>5}",
            "Benchmark", "1D", "1P", "2P", "3P", ">=4P", "ind", "ScRep", "ToStk", "ToHp", "Tot",
            "Avg"
        );
        for (_, s) in &self.rows {
            let t = &s.t3;
            let pair = |p: (usize, usize)| format!("{}/{}", p.0, p.1);
            let _ = writeln!(
                out,
                "{:<10} {:>7} {:>7} {:>7} {:>7} {:>7} {:>5} {:>6} {:>7} {:>6} {:>5} {:>5.2}",
                t.name,
                pair(t.one_d),
                pair(t.one_p),
                pair(t.two_p),
                pair(t.three_p),
                pair(t.four_p),
                t.ind_refs,
                t.scalar_rep,
                t.to_stack,
                t.to_heap,
                t.tot(),
                t.avg()
            );
        }
        let agg = self.summary();
        let _ = writeln!(
            out,
            "{:<10} overall avg {:.2}; {:.2}% definite-single; {:.2}% replaceable; {:.2}% single-target; {:.2}% heap pairs",
            "TOTAL", agg.overall_avg, agg.pct_definite, agg.pct_replaceable, agg.pct_single,
            agg.pct_heap
        );
        out
    }

    /// Renders Table 4.
    pub fn table4(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} | {:>5} {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5} {:>5}",
            "Benchmark", "f.lo", "f.gl", "f.fp", "f.sy", "t.lo", "t.gl", "t.fp", "t.sy"
        );
        for (_, s) in &self.rows {
            let t = &s.t4;
            let _ = writeln!(
                out,
                "{:<10} | {:>5} {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5} {:>5}",
                t.name, t.from.lo, t.from.gl, t.from.fp, t.from.sy, t.to.lo, t.to.gl, t.to.fp,
                t.to.sy
            );
        }
        out
    }

    /// Renders Table 5.
    pub fn table5(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>6} {:>6}",
            "Benchmark", "Stk->Stk", "Stk->Hp", "Hp->Hp", "Hp->Stk", "Avg", "Max"
        );
        for (_, s) in &self.rows {
            let t = &s.t5;
            let _ = writeln!(
                out,
                "{:<10} {:>9} {:>9} {:>9} {:>9} {:>6.1} {:>6}",
                t.name,
                t.stack_to_stack,
                t.stack_to_heap,
                t.heap_to_heap,
                t.heap_to_stack,
                t.avg(),
                t.max_per_stmt
            );
        }
        out
    }

    /// Renders Table 6.
    pub fn table6(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>9} {:>6} {:>4} {:>4} {:>6} {:>6}",
            "Benchmark", "ig-nodes", "call-site", "#fns", "R", "A", "Avgc", "Avgf"
        );
        for (_, s) in &self.rows {
            let t = &s.t6;
            let _ = writeln!(
                out,
                "{:<10} {:>8} {:>9} {:>6} {:>4} {:>4} {:>6.2} {:>6.2}",
                t.name,
                t.ig_nodes,
                t.call_sites,
                t.functions,
                t.recursive,
                t.approximate,
                t.avg_per_call_site(),
                t.avg_per_function()
            );
        }
        out
    }

    /// Headline aggregates corresponding to the bullet list of §6.
    pub fn summary(&self) -> Summary {
        let mut ind = 0usize;
        let mut one_d = 0usize;
        let mut single = 0usize;
        let mut rep = 0usize;
        let mut to_stack = 0usize;
        let mut to_heap = 0usize;
        for (_, s) in &self.rows {
            let t = &s.t3;
            ind += t.ind_refs;
            one_d += t.one_d.0 + t.one_d.1;
            single += t.one_d.0 + t.one_d.1 + t.one_p.0 + t.one_p.1 + t.zero;
            rep += t.scalar_rep;
            to_stack += t.to_stack;
            to_heap += t.to_heap;
        }
        let tot = to_stack + to_heap;
        let pct = |a: usize, b: usize| if b == 0 { 0.0 } else { 100.0 * a as f64 / b as f64 };
        Summary {
            ind_refs: ind,
            overall_avg: if ind == 0 { 0.0 } else { tot as f64 / ind as f64 },
            pct_definite: pct(one_d, ind),
            pct_single: pct(single, ind),
            pct_replaceable: pct(rep, ind),
            pct_heap: pct(to_heap, tot),
        }
    }
}

/// The §6 headline aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Total indirect references across the suite.
    pub ind_refs: usize,
    /// Average locations pointed to per indirect reference (paper: 1.13
    /// overall, ≤ 1.77 per program).
    pub overall_avg: f64,
    /// Percent of indirect references with one definite target
    /// (paper: 28.80%).
    pub pct_definite: f64,
    /// Percent with at most one non-NULL target (paper: 90.76% under
    /// the non-NULL-dereference assumption).
    pub pct_single: f64,
    /// Percent replaceable by direct references (paper: 19.39%).
    pub pct_replaceable: f64,
    /// Percent of used pairs targeting the heap (paper: 27.92%).
    pub pct_heap: f64,
}

/// The `livc` invocation-graph case study (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivcStudy {
    /// Nodes with points-to-driven resolution (paper: 203).
    pub precise_nodes: usize,
    /// Nodes when every indirect call targets all functions (paper: 619).
    pub all_functions_nodes: usize,
    /// Nodes with the address-taken set (paper: 589).
    pub address_taken_nodes: usize,
    /// Total defined functions (paper: 82).
    pub total_functions: usize,
    /// Address-taken functions (paper: 72).
    pub address_taken_functions: usize,
    /// Indirect call sites (paper: 3).
    pub indirect_sites: usize,
}

/// Runs the `livc` study.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn livc_study() -> Result<LivcStudy, PtaError> {
    let a = analyse(LIVC)?;
    let precise_nodes = a.result.ig.len();
    let all = build_ig_with_strategy(&a.ir, CallGraphStrategy::AllFunctions, 2_000_000)
        .map_err(|e| PtaError::Analysis(pta_core::AnalysisError::IgBudget(e)))?;
    let at = build_ig_with_strategy(&a.ir, CallGraphStrategy::AddressTaken, 2_000_000)
        .map_err(|e| PtaError::Analysis(pta_core::AnalysisError::IgBudget(e)))?;
    Ok(LivcStudy {
        precise_nodes,
        all_functions_nodes: all.len(),
        address_taken_nodes: at.len(),
        total_functions: a.ir.defined_functions().count(),
        address_taken_functions: address_taken_functions(&a.ir).len(),
        indirect_sites: a.ir.call_sites.iter().filter(|c| c.indirect).count(),
    })
}

impl LivcStudy {
    /// Renders the study.
    pub fn render(&self) -> String {
        format!(
            "livc function-pointer study (paper: 203 vs 619 vs 589 nodes)\n\
             total functions:            {}\n\
             address-taken functions:    {}\n\
             indirect call sites:        {}\n\
             IG nodes, points-to driven: {}\n\
             IG nodes, all-functions:    {}\n\
             IG nodes, address-taken:    {}\n",
            self.total_functions,
            self.address_taken_functions,
            self.indirect_sites,
            self.precise_nodes,
            self.all_functions_nodes,
            self.address_taken_nodes,
        )
    }
}

/// Precision of one analysis on one benchmark: the average number of
/// non-NULL targets of the dereferenced pointer per indirect reference.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Benchmark name.
    pub name: String,
    /// Context-sensitive (the paper's analysis).
    pub context_sensitive: f64,
    /// Context-insensitive flow-sensitive baseline.
    pub context_insensitive: f64,
    /// Andersen-style flow-insensitive baseline.
    pub andersen: f64,
    /// Percent of indirect references with a definite single target
    /// under the context-sensitive analysis.
    pub definite_cs: f64,
    /// Same under the context-insensitive baseline (contexts merge, so
    /// definite information degrades — the paper's central claim).
    pub definite_ci: f64,
}

/// Compares precision across the suite (context-sensitivity ablation).
///
/// # Errors
///
/// Propagates analysis failures.
pub fn ablation() -> Result<Vec<AblationRow>, PtaError> {
    let mut out = Vec::new();
    for b in all_benchmarks() {
        out.push(ablation_one(b)?);
    }
    Ok(out)
}

/// Ablation for a single benchmark.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn ablation_one(b: Benchmark) -> Result<AblationRow, PtaError> {
    let mut a = analyse(b)?;
    let cs = stats::table3(b.name, &a.ir, &mut a.result).avg();

    let ins = insensitive(&a.ir)?;
    let mut ins_result = pta_core::AnalysisResult {
        locs: ins.locs,
        ig: a.result.ig.clone(),
        per_stmt: ins.per_stmt,
        exit_set: ins.exit_set,
        warnings: Vec::new(),
    };
    let ci = stats::table3(b.name, &a.ir, &mut ins_result).avg();

    let t3_ins = stats::table3(b.name, &a.ir, &mut ins_result);
    let _ = &t3_ins;

    let and = andersen(&a.ir)?;
    // Andersen has one global solution: count average targets directly.
    let mut and_result = pta_core::AnalysisResult {
        locs: and.locs,
        ig: a.result.ig.clone(),
        per_stmt: {
            // Use the same global solution at every program point.
            let mut m = std::collections::BTreeMap::new();
            for id in a.result.per_stmt.keys() {
                m.insert(*id, and.solution.clone());
            }
            m
        },
        exit_set: and.solution.clone(),
        warnings: Vec::new(),
    };
    let an = stats::table3(b.name, &a.ir, &mut and_result).avg();

    let t3_cs = stats::table3(b.name, &a.ir, &mut a.result);
    let pct = |t: &stats::Table3Row| {
        if t.ind_refs == 0 {
            0.0
        } else {
            100.0 * (t.one_d.0 + t.one_d.1) as f64 / t.ind_refs as f64
        }
    };
    Ok(AblationRow {
        name: b.name.to_owned(),
        context_sensitive: cs,
        context_insensitive: ci,
        andersen: an,
        definite_cs: pct(&t3_cs),
        definite_ci: pct(&t3_ins),
    })
}

/// Renders the ablation table.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>12} {:>10} {:>8} {:>8}   (avg targets/ref; %D = definite single target)",
        "Benchmark", "ctx-sens", "ctx-insens", "andersen", "%D-cs", "%D-ci"
    );
    let mut sums = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>10.2} {:>12.2} {:>10.2} {:>7.1}% {:>7.1}%",
            r.name,
            r.context_sensitive,
            r.context_insensitive,
            r.andersen,
            r.definite_cs,
            r.definite_ci
        );
        sums.0 += r.context_sensitive;
        sums.1 += r.context_insensitive;
        sums.2 += r.andersen;
        sums.3 += r.definite_cs;
        sums.4 += r.definite_ci;
    }
    let n = rows.len().max(1) as f64;
    let _ = writeln!(
        out,
        "{:<10} {:>10.2} {:>12.2} {:>10.2} {:>7.1}% {:>7.1}%",
        "MEAN",
        sums.0 / n,
        sums.1 / n,
        sums.2 / n,
        sums.3 / n,
        sums.4 / n
    );
    out
}

/// Extension experiment (E12): precision effect of allocation-site heap
/// naming on the heap-heavy benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapSiteRow {
    /// Benchmark name.
    pub name: String,
    /// Average targets per indirect reference with the single `heap`.
    pub single_heap_avg: f64,
    /// Same with per-allocation-site locations.
    pub heap_sites_avg: f64,
    /// Distinct heap locations under site naming.
    pub sites: usize,
}

/// Runs the heap-site ablation on the heap-using benchmarks.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn heap_site_ablation() -> Result<Vec<HeapSiteRow>, PtaError> {
    let mut out = Vec::new();
    for name in ["hash", "misr", "xref", "sim", "dry", "compress"] {
        let b = crate::benchmark(name).expect("known benchmark");
        let mut base = analyse(b)?;
        let single = stats::table3(b.name, &base.ir, &mut base.result).avg();
        let cfg = pta_core::AnalysisConfig { heap_sites: true, ..Default::default() };
        let mut sited = crate::analyse_with(b, cfg)?;
        let with_sites = stats::table3(b.name, &sited.ir, &mut sited.result).avg();
        let sites = sited
            .result
            .locs
            .ids()
            .filter(|l| {
                matches!(sited.result.locs.get(*l).base, pta_core::LocBase::HeapSite(_))
            })
            .count();
        out.push(HeapSiteRow {
            name: name.to_owned(),
            single_heap_avg: single,
            heap_sites_avg: with_sites,
            sites,
        });
    }
    Ok(out)
}

/// Renders the heap-site ablation.
pub fn render_heap_sites(rows: &[HeapSiteRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>7}   (avg targets per indirect ref)",
        "Benchmark", "single-heap", "heap-sites", "#sites"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>12.2} {:>12.2} {:>7}",
            r.name, r.single_heap_avg, r.heap_sites_avg, r.sites
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_analyses_cleanly() {
        for b in all_benchmarks() {
            let a = analyse(b);
            assert!(a.is_ok(), "{} failed: {:?}", b.name, a.err());
        }
    }

    #[test]
    fn livc_study_shape_matches_paper() {
        let s = livc_study().expect("livc study");
        assert_eq!(s.total_functions, 82);
        assert_eq!(s.address_taken_functions, 72);
        assert_eq!(s.indirect_sites, 3);
        // The paper's qualitative result: precise << address-taken <= all.
        assert!(
            s.precise_nodes < s.address_taken_nodes,
            "precise {} !< address-taken {}",
            s.precise_nodes,
            s.address_taken_nodes
        );
        assert!(
            s.address_taken_nodes <= s.all_functions_nodes,
            "address-taken {} !<= all {}",
            s.address_taken_nodes,
            s.all_functions_nodes
        );
    }

    #[test]
    fn heap_site_ablation_runs_and_splits_the_summary() {
        // Note the metric subtlety: splitting the single `heap` summary
        // can RAISE the average target count (a pointer that "pointed to
        // heap" now points to several sites) while improving
        // disambiguation — two pointers to different sites are provably
        // disjoint. The rows document this trade-off.
        let rows = heap_site_ablation().expect("heap-site ablation");
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.sites >= 1, "{}: no allocation sites found", r.name);
            assert!(r.heap_sites_avg >= 1.0 - 1e-9, "{r:?}");
        }
        // At least one benchmark has multiple sites (the split happened).
        assert!(rows.iter().any(|r| r.sites > 1), "{rows:?}");
    }

    #[test]
    fn ablation_orders_precision_on_pointer_benchmark() {
        let r = ablation_one(crate::benchmark("toplev").unwrap()).expect("ablation");
        // Context-sensitive is at least as precise as both baselines.
        assert!(
            r.context_sensitive <= r.context_insensitive + 1e-9,
            "{r:?}"
        );
        assert!(r.context_sensitive <= r.andersen + 1e-9, "{r:?}");
    }
}
