//! A tiny deterministic parallel driver over `std::thread::scope`.
//!
//! The suite programs are independent, so the report harness fans them
//! out over a fixed pool of scoped worker threads pulling indices from
//! one atomic counter (work stealing without a dependency). Results are
//! reassembled in input order, so every table renders byte-identically
//! to a single-threaded run — `--jobs 1` forces the serial path
//! outright, which the test suite uses to prove it.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the machine's available
/// parallelism (1 when it cannot be queried).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item, running up to `jobs` scoped workers.
/// Results come back in input order regardless of completion order.
/// `jobs <= 1` runs strictly sequentially on the calling thread.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.min(items.len());
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("suite worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Runs three independent closures, concurrently when `jobs > 1`.
pub fn par_join3<A, B, C>(
    jobs: usize,
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
    fc: impl FnOnce() -> C + Send,
) -> (A, B, C)
where
    A: Send,
    B: Send,
    C: Send,
{
    if jobs <= 1 {
        return (fa(), fb(), fc());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(fb);
        let hc = s.spawn(fc);
        let a = fa();
        (
            a,
            hb.join().expect("worker panicked"),
            hc.join().expect("worker panicked"),
        )
    })
}

/// Runs four independent closures, concurrently when `jobs > 1` (the
/// E11 ablation evaluates the context-sensitive analysis and three
/// baselines of one benchmark this way).
pub fn par_join4<A, B, C, D>(
    jobs: usize,
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
    fc: impl FnOnce() -> C + Send,
    fd: impl FnOnce() -> D + Send,
) -> (A, B, C, D)
where
    A: Send,
    B: Send,
    C: Send,
    D: Send,
{
    if jobs <= 1 {
        return (fa(), fb(), fc(), fd());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(fb);
        let hc = s.spawn(fc);
        let hd = s.spawn(fd);
        let a = fa();
        (
            a,
            hb.join().expect("worker panicked"),
            hc.join().expect("worker panicked"),
            hd.join().expect("worker panicked"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(1, &items, |&x| x * x);
        let parallel = par_map(8, &items, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 49);
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map(4, &[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn par_joins_agree_with_serial() {
        let (a, b, c) = par_join3(4, || 1, || "two", || 3.0);
        assert_eq!((a, b, c), (1, "two", 3.0));
        let (a, b, c, d) = par_join4(4, || 1u8, || 2u16, || 3u32, || 4u64);
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
        let (a, b, c, d) = par_join4(1, || 1u8, || 2u16, || 3u32, || 4u64);
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
