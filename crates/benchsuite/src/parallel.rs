//! A tiny deterministic parallel driver over `std::thread::scope`.
//!
//! The suite programs are independent, so the report harness fans them
//! out over a fixed pool of scoped worker threads pulling indices from
//! one atomic counter (work stealing without a dependency). Results are
//! reassembled in input order, so every table renders byte-identically
//! to a single-threaded run — `--jobs 1` forces the serial path
//! outright, which the test suite uses to prove it.
//!
//! Panic isolation: every item/closure runs under
//! [`std::panic::catch_unwind`], so one panicking job can no longer
//! tear down its siblings mid-flight — every other job still completes
//! and contributes its result. A panic is then re-raised on the calling
//! thread (the first one, in input order, for determinism). Callers
//! that want panics as *data* instead — the suite driver does, so a
//! crashing benchmark becomes a failed table row — wrap their closure
//! in [`catch_panic`] themselves, which makes the drivers' own re-raise
//! unreachable.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default: the machine's available
/// parallelism (1 when it cannot be queried).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f`, converting a panic into an `Err` with the panic message.
/// The building block for treating a crashing benchmark as a failed
/// row instead of a dead process.
pub fn catch_panic<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(&*p))
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}

type Caught<R> = Result<R, Box<dyn std::any::Any + Send>>;

/// Re-raises the first panic (input order) among caught results,
/// otherwise unwraps them all.
fn resume_first<R>(results: Vec<Caught<R>>) -> Vec<R> {
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(p) => std::panic::resume_unwind(p),
        }
    }
    out
}

/// Applies `f` to every item, running up to `jobs` scoped workers.
/// Results come back in input order regardless of completion order.
/// `jobs <= 1` runs strictly sequentially on the calling thread.
///
/// A panicking item no longer aborts its siblings: every other item
/// still runs to completion, then the first panic (in input order) is
/// re-raised here. Wrap `f` in [`catch_panic`] to get panics as values.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.min(items.len());
    if jobs <= 1 {
        return resume_first(
            items
                .iter()
                .map(|it| catch_unwind(AssertUnwindSafe(|| f(it))))
                .collect(),
        );
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, Caught<R>)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, catch_unwind(AssertUnwindSafe(|| f(item)))));
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| match w.join() {
                Ok(local) => local,
                // The worker loop itself cannot panic (f is caught);
                // defensively surface anything unexpected.
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    resume_first(indexed.into_iter().map(|(_, r)| r).collect())
}

/// Runs three independent closures, concurrently when `jobs > 1`.
/// All three run to completion even if one panics; the first panic (in
/// argument order) is then re-raised.
pub fn par_join3<A, B, C>(
    jobs: usize,
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
    fc: impl FnOnce() -> C + Send,
) -> (A, B, C)
where
    A: Send,
    B: Send,
    C: Send,
{
    let (a, b, c) = if jobs <= 1 {
        (
            catch_unwind(AssertUnwindSafe(fa)),
            catch_unwind(AssertUnwindSafe(fb)),
            catch_unwind(AssertUnwindSafe(fc)),
        )
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(|| catch_unwind(AssertUnwindSafe(fb)));
            let hc = s.spawn(|| catch_unwind(AssertUnwindSafe(fc)));
            let a = catch_unwind(AssertUnwindSafe(fa));
            (a, join_caught(hb), join_caught(hc))
        })
    };
    match (a, b, c) {
        (Ok(a), Ok(b), Ok(c)) => (a, b, c),
        (a, b, c) => {
            let p = [a.err(), b.err(), c.err()];
            resume_any(p)
        }
    }
}

/// Runs four independent closures, concurrently when `jobs > 1` (the
/// E11 ablation evaluates the context-sensitive analysis and three
/// baselines of one benchmark this way). Panic semantics as
/// [`par_join3`].
pub fn par_join4<A, B, C, D>(
    jobs: usize,
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
    fc: impl FnOnce() -> C + Send,
    fd: impl FnOnce() -> D + Send,
) -> (A, B, C, D)
where
    A: Send,
    B: Send,
    C: Send,
    D: Send,
{
    let (a, b, c, d) = if jobs <= 1 {
        (
            catch_unwind(AssertUnwindSafe(fa)),
            catch_unwind(AssertUnwindSafe(fb)),
            catch_unwind(AssertUnwindSafe(fc)),
            catch_unwind(AssertUnwindSafe(fd)),
        )
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(|| catch_unwind(AssertUnwindSafe(fb)));
            let hc = s.spawn(|| catch_unwind(AssertUnwindSafe(fc)));
            let hd = s.spawn(|| catch_unwind(AssertUnwindSafe(fd)));
            let a = catch_unwind(AssertUnwindSafe(fa));
            (a, join_caught(hb), join_caught(hc), join_caught(hd))
        })
    };
    match (a, b, c, d) {
        (Ok(a), Ok(b), Ok(c), Ok(d)) => (a, b, c, d),
        (a, b, c, d) => {
            let p = [a.err(), b.err(), c.err(), d.err()];
            resume_any(p)
        }
    }
}

fn join_caught<R>(h: std::thread::ScopedJoinHandle<'_, Caught<R>>) -> Caught<R> {
    match h.join() {
        Ok(r) => r,
        Err(p) => Err(p),
    }
}

fn resume_any<const N: usize>(panics: [Option<Box<dyn std::any::Any + Send>>; N]) -> ! {
    let p = panics
        .into_iter()
        .flatten()
        .next()
        .expect("resume_any called without a panic");
    std::panic::resume_unwind(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(1, &items, |&x| x * x);
        let parallel = par_map(8, &items, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 49);
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map(4, &[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn par_joins_agree_with_serial() {
        let (a, b, c) = par_join3(4, || 1, || "two", || 3.0);
        assert_eq!((a, b, c), (1, "two", 3.0));
        let (a, b, c, d) = par_join4(4, || 1u8, || 2u16, || 3u32, || 4u64);
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
        let (a, b, c, d) = par_join4(1, || 1u8, || 2u16, || 3u32, || 4u64);
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn catch_panic_returns_the_message() {
        assert_eq!(catch_panic(|| 7), Ok(7));
        let err = catch_panic(|| -> u32 { panic!("boom {}", 42) }).unwrap_err();
        assert!(err.contains("boom 42"), "{err}");
    }

    #[test]
    fn one_panicking_item_does_not_kill_siblings() {
        // Caught per item: the siblings' results are all computed, and
        // catch_panic turns the bad one into a value.
        let items: Vec<u32> = (0..16).collect();
        for jobs in [1, 4] {
            let out = par_map(jobs, &items, |&x| {
                catch_panic(move || {
                    assert!(x != 7, "seven is right out");
                    x * 2
                })
            });
            assert_eq!(out.len(), 16);
            assert_eq!(out[6], Ok(12));
            assert!(out[7].as_ref().unwrap_err().contains("seven"));
            assert_eq!(out[15], Ok(30));
        }
    }

    #[test]
    fn uncaught_panic_still_propagates_after_siblings_finish() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let done = AtomicUsize::new(0);
        let items: Vec<u32> = (0..8).collect();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(4, &items, |&x| {
                if x == 3 {
                    panic!("job 3 exploded");
                }
                done.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        assert!(r.is_err());
        // Every non-panicking sibling completed despite the panic.
        assert_eq!(done.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn par_join_runs_all_closures_despite_a_panic() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let done = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_join3(
                4,
                || done.fetch_add(1, Ordering::Relaxed),
                || panic!("middle closure exploded"),
                || done.fetch_add(1, Ordering::Relaxed),
            )
        }));
        assert!(r.is_err());
        assert_eq!(done.load(Ordering::Relaxed), 2);
    }
}
