//! Prints the reproduced evaluation tables of the PLDI 1994 points-to
//! paper. Usage:
//!
//! ```text
//! report [SECTION] [--jobs N] [--timings] [--json PATH]
//!
//! SECTION: table2|table3|table4|table5|table6|livc|ablation|
//!          heap-sites|summary|all        (default: all)
//! --jobs N    worker threads (default: available parallelism; 1 = serial)
//! --timings   append the per-benchmark timing table (suite sections only)
//! --json PATH write suite timings as JSON (the CI bench artifact)
//! ```
//!
//! Tables 2–6 are byte-identical for every `--jobs` value; timings are
//! kept out of them and shown only on request.

use pta_benchsuite::report;

fn main() {
    let mut section: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut timings = false;
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(n) => jobs = Some(n.max(1)),
                    Err(_) => die(&format!("--jobs expects a number, got `{v}`")),
                }
            }
            "--timings" => timings = true,
            "--json" => match args.next() {
                Some(p) => json = Some(p),
                None => die("--json expects a file path"),
            },
            s if s.starts_with('-') => die(&format!("unknown flag `{s}`")),
            s => section = Some(s.to_owned()),
        }
    }
    const SECTIONS: &[&str] = &[
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "summary",
        "livc",
        "heap-sites",
        "ablation",
        "all",
    ];
    if let Some(s) = &section {
        if !SECTIONS.contains(&s.as_str()) {
            die(&format!(
                "unknown section `{s}` (expected one of: {})",
                SECTIONS.join(", ")
            ));
        }
    }
    let jobs = jobs.unwrap_or_else(pta_benchsuite::default_jobs);
    let arg = section.unwrap_or_else(|| "all".to_owned());
    let want = |s: &str| arg == s || arg == "all";

    let suite_wanted = want("table2")
        || want("table3")
        || want("table4")
        || want("table5")
        || want("table6")
        || want("summary")
        || timings
        || json.is_some();
    if suite_wanted {
        let suite = report::run_suite_jobs(jobs).expect("suite analyses cleanly");
        if want("table2") {
            println!(
                "== Table 2: benchmark characteristics ==\n{}",
                suite.table2()
            );
        }
        if want("table3") {
            println!(
                "== Table 3: points-to statistics for indirect references ==\n{}",
                suite.table3()
            );
        }
        if want("table4") {
            println!(
                "== Table 4: categorization of points-to info used by indirect refs ==\n{}",
                suite.table4()
            );
        }
        if want("table5") {
            println!(
                "== Table 5: general points-to statistics ==\n{}",
                suite.table5()
            );
        }
        if want("table6") {
            println!(
                "== Table 6: invocation graph statistics ==\n{}",
                suite.table6()
            );
        }
        if want("summary") {
            let s = suite.summary();
            println!("== Section 6 headline aggregates ==");
            println!("indirect references:           {}", s.ind_refs);
            println!(
                "overall avg targets/ref:       {:.2}  (paper: 1.13)",
                s.overall_avg
            );
            println!(
                "% definite single target:      {:.2}% (paper: 28.80%)",
                s.pct_definite
            );
            println!(
                "% at most one non-NULL target: {:.2}% (paper: 90.76%)",
                s.pct_single
            );
            println!(
                "% replaceable by direct ref:   {:.2}% (paper: 19.39%)",
                s.pct_replaceable
            );
            println!(
                "% pairs targeting the heap:    {:.2}% (paper: 27.92%)",
                s.pct_heap
            );
            println!();
        }
        if timings {
            println!(
                "== Suite timings (wall clock; not part of the tables) ==\n{}",
                suite.timings_table()
            );
        }
        if let Some(path) = &json {
            std::fs::write(path, suite.timings_json())
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            eprintln!("wrote timings to {path}");
        }
    }
    if want("livc") {
        let s = report::livc_study_jobs(jobs).expect("livc analyses cleanly");
        println!("== livc function-pointer study ==\n{}", s.render());
    }
    if want("heap-sites") {
        let rows = report::heap_site_ablation_jobs(jobs).expect("heap-site ablation runs");
        println!(
            "== Allocation-site heap extension (E12) ==\n{}",
            report::render_heap_sites(&rows)
        );
    }
    if want("ablation") {
        let rows = report::ablation_jobs(jobs).expect("ablation analyses cleanly");
        println!(
            "== Context-sensitivity ablation ==\n{}",
            report::render_ablation(&rows)
        );
    }
}

fn die(msg: &str) -> ! {
    eprintln!("report: {msg}");
    std::process::exit(2);
}
