//! Prints the reproduced evaluation tables of the PLDI 1994 points-to
//! paper. Usage:
//!
//! ```text
//! report [SECTION] [--jobs N] [--timings] [--lint] [--profile]
//!        [--json PATH] [--serve-json PATH] [--store-dir DIR]
//!        [--deadline MS] [--budget N] [--prune-liveness]
//!
//! SECTION: table2|table3|table4|table5|table6|livc|ablation|
//!          heap-sites|summary|all        (default: all)
//! --jobs N     worker threads (default: available parallelism; 1 = serial)
//! --timings    append the per-benchmark timing table (suite sections only)
//! --lint       append the per-benchmark diagnostics table (pta-lint)
//! --profile    run with the trace-metrics layer attached and append
//!              the per-benchmark self-profiling table (memo hit/miss,
//!              invocation-graph activity, map volumes)
//! --json PATH  write suite timings as JSON (the CI bench artifact);
//!              entries embed per-benchmark diagnostic counts and the
//!              deterministic trace-metrics counters
//! --serve-json PATH  embed a `pta.load.v1` artifact (written by
//!              `pta-load --json`) as a `"serve"` section of the JSON
//!              artifact, and print its throughput/latency table
//! --store-dir DIR  write one fact-store snapshot per benchmark to
//!              DIR/<name>.ptas and time a warm (snapshot-seeded)
//!              re-analysis next to the cold one; the timing table and
//!              JSON artifact then carry cold/warm columns
//! --deadline MS wall-clock budget per benchmark analysis, in
//!              milliseconds; exhaustion degrades to cheaper analyses
//!              (rows are tagged with their fidelity)
//! --budget N   statement budget per benchmark analysis (same ladder)
//! --prune-liveness  drop points-to pairs for dead local pointers during
//!              propagation (liveness-pruned per-point tables; use-point
//!              resolutions unchanged); the JSON artifact then carries a
//!              per-benchmark `"prune"` sparsity section (E17)
//! ```
//!
//! Tables 2–6 are byte-identical for every `--jobs` value; timings are
//! kept out of them and shown only on request.
//!
//! Exit status: `0` on a clean run, `1` when any suite row failed or an
//! analysis errored, `2` on a usage error.

use pta_benchsuite::report;
use pta_core::AnalysisConfig;
use std::time::Duration;

/// Usage error (bad flags).
const EXIT_USAGE: i32 = 2;
/// A benchmark failed to analyse (partial report printed).
const EXIT_ANALYSIS: i32 = 1;

fn main() {
    let mut section: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut timings = false;
    let mut lint = false;
    let mut profile = false;
    let mut json: Option<String> = None;
    let mut serve_json: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut config = AnalysisConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(0) => die_usage(
                        "--jobs expects a positive number (got 0); use 1 for a serial run",
                    ),
                    Ok(n) => jobs = Some(n),
                    Err(_) => die_usage(&format!("--jobs expects a number, got `{v}`")),
                }
            }
            "--timings" => timings = true,
            "--lint" => lint = true,
            "--profile" => profile = true,
            "--json" => match args.next() {
                Some(p) => json = Some(p),
                None => die_usage("--json expects a file path"),
            },
            "--serve-json" => match args.next() {
                Some(p) => serve_json = Some(p),
                None => die_usage("--serve-json expects a file path"),
            },
            "--store-dir" => match args.next() {
                Some(p) => store_dir = Some(p),
                None => die_usage("--store-dir expects a directory path"),
            },
            "--deadline" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<u64>() {
                    Ok(ms) => config.deadline = Some(Duration::from_millis(ms)),
                    Err(_) => die_usage(&format!("--deadline expects milliseconds, got `{v}`")),
                }
            }
            "--budget" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => config.max_steps = n,
                    _ => die_usage(&format!("--budget expects a positive number, got `{v}`")),
                }
            }
            "--prune-liveness" => config.prune_liveness = true,
            s if s.starts_with('-') => die_usage(&format!("unknown flag `{s}`")),
            s => section = Some(s.to_owned()),
        }
    }
    const SECTIONS: &[&str] = &[
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "summary",
        "livc",
        "heap-sites",
        "ablation",
        "all",
    ];
    if let Some(s) = &section {
        if !SECTIONS.contains(&s.as_str()) {
            die_usage(&format!(
                "unknown section `{s}` (expected one of: {})",
                SECTIONS.join(", ")
            ));
        }
    }
    // Load (and validate) the pta-load artifact up front so a missing
    // or corrupt file fails before the suite spends minutes analysing.
    let serve_artifact: Option<String> = serve_json.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die_usage(&format!("cannot read {path}: {e}")));
        if let Err(e) = report::parse_serve_artifact(&text) {
            die_usage(&format!("{path}: {e}"));
        }
        text
    });
    let jobs = jobs.unwrap_or_else(pta_benchsuite::default_jobs);
    let arg = section.unwrap_or_else(|| "all".to_owned());
    let want = |s: &str| arg == s || arg == "all";
    let mut failed = false;

    let suite_wanted = want("table2")
        || want("table3")
        || want("table4")
        || want("table5")
        || want("table6")
        || want("summary")
        || timings
        || lint
        || profile
        || json.is_some()
        || serve_json.is_some()
        || store_dir.is_some();
    if suite_wanted {
        // Metrics ride along whenever the artifact or the profile table
        // asks for them; plain table runs stay untraced. Store mode
        // collects no metrics (the cold run is a plain recorded run).
        let with_metrics = (profile || json.is_some()) && store_dir.is_none();
        let store_path = store_dir.as_ref().map(std::path::PathBuf::from);
        if let Some(dir) = &store_path {
            if let Err(e) = std::fs::create_dir_all(dir) {
                die_usage(&format!("cannot create {}: {e}", dir.display()));
            }
        }
        let suite = report::run_benchmarks_store(
            pta_benchsuite::SUITE,
            jobs,
            config.clone(),
            with_metrics,
            store_path.as_deref(),
        );
        if want("table2") {
            println!(
                "== Table 2: benchmark characteristics ==\n{}",
                suite.table2()
            );
        }
        if want("table3") {
            println!(
                "== Table 3: points-to statistics for indirect references ==\n{}",
                suite.table3()
            );
        }
        if want("table4") {
            println!(
                "== Table 4: categorization of points-to info used by indirect refs ==\n{}",
                suite.table4()
            );
        }
        if want("table5") {
            println!(
                "== Table 5: general points-to statistics ==\n{}",
                suite.table5()
            );
        }
        if want("table6") {
            println!(
                "== Table 6: invocation graph statistics ==\n{}",
                suite.table6()
            );
        }
        if want("summary") {
            let s = suite.summary();
            println!("== Section 6 headline aggregates ==");
            println!("indirect references:           {}", s.ind_refs);
            println!(
                "overall avg targets/ref:       {:.2}  (paper: 1.13)",
                s.overall_avg
            );
            println!(
                "% definite single target:      {:.2}% (paper: 28.80%)",
                s.pct_definite
            );
            println!(
                "% at most one non-NULL target: {:.2}% (paper: 90.76%)",
                s.pct_single
            );
            println!(
                "% replaceable by direct ref:   {:.2}% (paper: 19.39%)",
                s.pct_replaceable
            );
            println!(
                "% pairs targeting the heap:    {:.2}% (paper: 27.92%)",
                s.pct_heap
            );
            println!();
        }
        if timings {
            println!(
                "== Suite timings (wall clock; not part of the tables) ==\n{}",
                suite.timings_table()
            );
        }
        if lint {
            println!(
                "== Diagnostics per benchmark (pta-lint) ==\n{}",
                suite.lint_table()
            );
        }
        if profile {
            println!(
                "== Self-profiling metrics per benchmark (trace layer) ==\n{}",
                suite.profile_table()
            );
        }
        if let Some(text) = &serve_artifact {
            // Validated at startup, so these unwraps cannot fire.
            let parsed = report::parse_serve_artifact(text).expect("validated at startup");
            println!(
                "== Serving throughput (pta-load) ==\n{}",
                report::serve_table(&parsed)
            );
        }
        if let Some(path) = &json {
            let artifact = match &serve_artifact {
                Some(text) => suite
                    .timings_json_with_serve(text)
                    .expect("validated at startup"),
                None => suite.timings_json(),
            };
            std::fs::write(path, artifact)
                .unwrap_or_else(|e| die_usage(&format!("cannot write {path}: {e}")));
            eprintln!("wrote timings to {path}");
        }
        if !suite.is_clean() {
            eprint!("{}", suite.render_failures());
        }
        if !suite.failures().is_empty() {
            failed = true;
        }
    }
    if want("livc") {
        match report::livc_study_jobs(jobs) {
            Ok(s) => println!("== livc function-pointer study ==\n{}", s.render()),
            Err(e) => {
                eprintln!("report: livc study failed: {e}");
                failed = true;
            }
        }
    }
    if want("heap-sites") {
        match report::heap_site_ablation_jobs(jobs) {
            Ok(rows) => println!(
                "== Allocation-site heap extension (E12) ==\n{}",
                report::render_heap_sites(&rows)
            ),
            Err(e) => {
                eprintln!("report: heap-site ablation failed: {e}");
                failed = true;
            }
        }
    }
    if want("ablation") {
        match report::ablation_jobs(jobs) {
            Ok(rows) => println!(
                "== Context-sensitivity ablation ==\n{}",
                report::render_ablation(&rows)
            ),
            Err(e) => {
                eprintln!("report: ablation failed: {e}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("report: some analyses failed; see the rows above");
        std::process::exit(EXIT_ANALYSIS);
    }
}

fn die_usage(msg: &str) -> ! {
    eprintln!("report: {msg}");
    std::process::exit(EXIT_USAGE);
}
