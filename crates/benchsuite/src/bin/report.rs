//! Prints the reproduced evaluation tables of the PLDI 1994 points-to
//! paper. Usage:
//!
//! ```text
//! report [table2|table3|table4|table5|table6|livc|ablation|heap-sites|summary|all]
//! ```

use pta_benchsuite::report;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let want = |s: &str| arg == s || arg == "all";

    if want("table2")
        || want("table3")
        || want("table4")
        || want("table5")
        || want("table6")
        || want("summary")
    {
        let suite = report::run_suite().expect("suite analyses cleanly");
        if want("table2") {
            println!("== Table 2: benchmark characteristics ==\n{}", suite.table2());
        }
        if want("table3") {
            println!("== Table 3: points-to statistics for indirect references ==\n{}", suite.table3());
        }
        if want("table4") {
            println!("== Table 4: categorization of points-to info used by indirect refs ==\n{}", suite.table4());
        }
        if want("table5") {
            println!("== Table 5: general points-to statistics ==\n{}", suite.table5());
        }
        if want("table6") {
            println!("== Table 6: invocation graph statistics ==\n{}", suite.table6());
        }
        if want("summary") {
            let s = suite.summary();
            println!("== Section 6 headline aggregates ==");
            println!("indirect references:           {}", s.ind_refs);
            println!("overall avg targets/ref:       {:.2}  (paper: 1.13)", s.overall_avg);
            println!("% definite single target:      {:.2}% (paper: 28.80%)", s.pct_definite);
            println!("% at most one non-NULL target: {:.2}% (paper: 90.76%)", s.pct_single);
            println!("% replaceable by direct ref:   {:.2}% (paper: 19.39%)", s.pct_replaceable);
            println!("% pairs targeting the heap:    {:.2}% (paper: 27.92%)", s.pct_heap);
            println!();
        }
    }
    if want("livc") {
        let s = report::livc_study().expect("livc analyses cleanly");
        println!("== livc function-pointer study ==\n{}", s.render());
    }
    if want("heap-sites") {
        let rows = report::heap_site_ablation().expect("heap-site ablation runs");
        println!("== Allocation-site heap extension (E12) ==\n{}", report::render_heap_sites(&rows));
    }
    if want("ablation") {
        let rows = report::ablation().expect("ablation analyses cleanly");
        println!("== Context-sensitivity ablation ==\n{}", report::render_ablation(&rows));
    }
}
