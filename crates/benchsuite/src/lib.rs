//! # pta-benchsuite — benchmark programs and table reproduction
//!
//! Eighteen C programs mirroring the paper's benchmark set (Table 2)
//! plus the `livc` function-pointer case study, and the harness that
//! regenerates Tables 2–6 and the §6 invocation-graph comparison.
//!
//! The original 1994 sources are not available; each program here
//! reproduces the *pointer and call structure* its namesake is
//! described with (see `DESIGN.md`). Absolute counts differ from the
//! paper; trends are preserved and recorded in `EXPERIMENTS.md`.

pub mod parallel;
pub mod report;

pub use parallel::default_jobs;

use pta_core::{AnalysisConfig, AnalysisResult, PtaError};
use pta_simple::IrProgram;

/// One embedded benchmark program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Benchmark {
    /// Benchmark name (matching Table 2 of the paper).
    pub name: &'static str,
    /// C source text.
    pub source: &'static str,
    /// One-line description (from Table 2).
    pub description: &'static str,
}

macro_rules! bench {
    ($name:literal, $desc:literal) => {
        Benchmark {
            name: $name,
            source: include_str!(concat!("../programs/", $name, ".c")),
            description: $desc,
        }
    };
}

/// The seventeen Table 2 benchmarks, in the paper's order.
pub const SUITE: &[Benchmark] = &[
    bench!(
        "genetic",
        "Implementation of a genetic algorithm for sorting."
    ),
    bench!("dry", "Dhrystone benchmark."),
    bench!("clinpack", "The C version of Linpack."),
    bench!("config", "Checks all the features of the C-language."),
    bench!("toplev", "The top level of a C compiler driver."),
    bench!("compress", "UNIX utility program."),
    bench!(
        "mway",
        "A unified version of the best algorithms for m-way partitioning."
    ),
    bench!("hash", "An implementation of a hash table."),
    bench!("misr", "Creates two MISRs and compares their signatures."),
    bench!(
        "xref",
        "A cross-reference program to build a tree of items."
    ),
    bench!("stanford", "Stanford baby benchmark."),
    bench!("fixoutput", "A simple translator."),
    bench!("sim", "Finds local similarities with affine weights."),
    bench!(
        "travel",
        "Implements Traveling Salesman Problem with greedy heuristics."
    ),
    bench!("csuite", "Part of test suite for vectorizing C compilers."),
    bench!(
        "msc",
        "Calculates the min spanning circle of a set of n points."
    ),
    bench!(
        "lws",
        "Implements dynamic simulation of flexible water molecule."
    ),
];

/// The `livc` function-pointer case study (§6).
pub const LIVC: Benchmark = bench!(
    "livc",
    "Livermore loops dispatched through three arrays of 24 function pointers."
);

/// A reserved benchmark name whose suite job panics deliberately. Used
/// by the fault-isolation tests (and never present in [`SUITE`]) to
/// prove one crashing job yields a failed row instead of a dead run.
pub const PANIC_BENCH_NAME: &str = "__panic__";

/// Every embedded program (the suite plus `livc`).
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = SUITE.to_vec();
    v.push(LIVC);
    v
}

/// Looks up a benchmark by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// A fully analysed benchmark.
#[derive(Debug)]
pub struct Analysed {
    /// The benchmark.
    pub bench: Benchmark,
    /// Its SIMPLE form.
    pub ir: IrProgram,
    /// The context-sensitive analysis result.
    pub result: AnalysisResult,
}

/// Compiles and analyses one benchmark with the default configuration.
///
/// # Errors
///
/// Returns a [`PtaError`] if the program fails the front end or the
/// analysis (which would be a bug in the suite).
pub fn analyse(bench: Benchmark) -> Result<Analysed, PtaError> {
    analyse_with(bench, AnalysisConfig::default())
}

/// [`analyse`] with an explicit configuration.
///
/// # Errors
///
/// As [`analyse`].
pub fn analyse_with(bench: Benchmark, config: AnalysisConfig) -> Result<Analysed, PtaError> {
    let ir = pta_simple::compile(bench.source)?;
    let result = pta_core::analyze_with(&ir, config)?;
    Ok(Analysed { bench, ir, result })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seventeen_programs() {
        assert_eq!(SUITE.len(), 17);
        assert_eq!(all_benchmarks().len(), 18);
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = SUITE.iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "genetic",
                "dry",
                "clinpack",
                "config",
                "toplev",
                "compress",
                "mway",
                "hash",
                "misr",
                "xref",
                "stanford",
                "fixoutput",
                "sim",
                "travel",
                "csuite",
                "msc",
                "lws",
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("livc").is_some());
        assert!(benchmark("hash").is_some());
        assert!(benchmark("nonexistent").is_none());
    }

    #[test]
    fn livc_has_82_functions_and_three_banks() {
        let ir = pta_simple::compile(LIVC.source).expect("livc compiles");
        let defined = ir.defined_functions().count();
        assert_eq!(defined, 82);
        assert_eq!(ir.call_sites.iter().filter(|c| c.indirect).count(), 3);
    }
}
