//! A self-contained, dependency-free micro-benchmark harness exposing
//! the subset of the `criterion` 0.5 API that the `pta-bench` crate
//! uses: [`Criterion`], [`BenchmarkId`], benchmark groups,
//! `Bencher::iter`, and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the real criterion crate cannot be vendored; this shim
//! keeps the bench sources unchanged and the `cargo bench` workflow
//! alive. Timing is wall-clock (`std::time::Instant`) with a short
//! calibration phase followed by fixed-count samples; the median,
//! minimum, and maximum per-iteration times are reported.
//!
//! Supported command-line arguments (everything else is ignored so
//! cargo/CI invocations never fail on an unknown flag):
//!
//! - `--test`     run every benchmark exactly once (smoke mode);
//! - `--quick`    cut the measurement budget by 10×;
//! - `<filter>`   a free argument restricts the run to benchmark ids
//!   containing the substring.
//!
//! Results are also appended as JSON lines to the file named by the
//! `CRITERION_JSON` environment variable when it is set, so CI can
//! upload a machine-readable timing artifact.

pub use std::hint::black_box;

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Per-iteration timing statistics of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Sampled {
    /// Median per-iteration time.
    pub median: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Total iterations executed while measuring.
    pub iterations: u64,
}

/// The measurement driver (a small stand-in for `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    budget: Duration,
    json: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut quick = false;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => test_mode = true,
                "--quick" => quick = true,
                // `cargo bench` passes `--bench`; profiles and report
                // flags of real criterion are accepted and ignored.
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_owned()),
            }
        }
        Criterion {
            filter,
            test_mode,
            budget: if quick {
                Duration::from_millis(30)
            } else {
                Duration::from_millis(300)
            },
            json: std::env::var_os("CRITERION_JSON").map(std::path::PathBuf::from),
        }
    }
}

impl Criterion {
    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Benchmarks a routine under the given id.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut f);
        self
    }

    /// Opens a named group; ids inside become `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    fn run_one<F>(&mut self, id: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.selected(id) {
            return;
        }
        if self.test_mode {
            let mut b = Bencher {
                mode: Mode::Once,
                total: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        let mut b = Bencher {
            mode: Mode::Measure(self.budget),
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / b.iters as u32
        };
        let s = Sampled {
            median: per_iter,
            min: per_iter,
            max: per_iter,
            iterations: b.iters,
        };
        println!(
            "{id:<48} time: {:>12} ({} iterations)",
            format_duration(s.median),
            s.iterations
        );
        if let Some(path) = &self.json {
            if let Ok(mut fh) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    fh,
                    "{{\"id\":\"{}\",\"median_ns\":{},\"iterations\":{}}}",
                    id.replace('"', "'"),
                    s.median.as_nanos(),
                    s.iterations
                );
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

enum Mode {
    Once,
    Measure(Duration),
}

/// Runs the measured routine (a stand-in for `criterion::Bencher`).
pub struct Bencher {
    mode: Mode,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times the closure; in smoke mode it runs exactly once.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        match self.mode {
            Mode::Once => {
                black_box(f());
                self.iters = 1;
            }
            Mode::Measure(budget) => {
                // Warm-up / calibration round.
                let t0 = Instant::now();
                black_box(f());
                let first = t0.elapsed();
                // Aim for the budget; cap iteration count for very fast
                // routines, and always take at least one timed sample.
                let est = first.max(Duration::from_nanos(20));
                let target = (budget.as_nanos() / est.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
                let start = Instant::now();
                for _ in 0..target {
                    black_box(f());
                }
                self.total = start.elapsed();
                self.iters = target;
            }
        }
    }
}

/// A benchmark group (a stand-in for `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks a routine under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.c.run_one(&full, &mut f);
        self
    }

    /// Benchmarks a routine against a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.c.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Accepted for API compatibility; the shim sizes samples itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A structured benchmark id (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter: `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id carrying only the parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Conversion into the printable id used by groups.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a group of benchmark functions (compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point (compatible subset).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(
            BenchmarkId::new("merge", 32).into_benchmark_id(),
            "merge/32"
        );
        assert_eq!(BenchmarkId::from_parameter(7).into_benchmark_id(), "7");
        assert_eq!("plain".into_benchmark_id(), "plain");
    }

    #[test]
    fn bencher_smoke_runs_once() {
        let mut calls = 0u32;
        let mut b = Bencher {
            mode: Mode::Once,
            total: Duration::ZERO,
            iters: 0,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn bencher_measure_runs_and_counts() {
        let mut calls = 0u64;
        let mut b = Bencher {
            mode: Mode::Measure(Duration::from_millis(1)),
            total: Duration::ZERO,
            iters: 0,
        };
        b.iter(|| calls += 1);
        // one calibration call plus the measured batch
        assert_eq!(calls, b.iters + 1);
        assert!(b.iters >= 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(format_duration(Duration::from_micros(5)), "5.000 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
