//! The `pta serve` query engine: a deterministic JSONL
//! request/response protocol over a loaded fact base.
//!
//! One request per line on stdin, one response per line on stdout.
//! Requests are flat JSON objects:
//!
//! ```text
//! {"id": 1, "op": "points-to", "func": "main", "var": "p", "stmt": 4}
//! {"id": 2, "op": "aliases?", "a_func": "main", "a_var": "p", "b_func": "main", "b_var": "q"}
//! {"id": 3, "op": "call-targets", "site": 0}
//! {"id": 4, "op": "lint", "function": "main"}
//! ```
//!
//! `stmt` is optional for `points-to`/`aliases?`; without it the query
//! runs against the exit set of `main`. Responses echo `id`, carry
//! `"ok": true|false`, and are rendered with sorted keys and sorted
//! fact lists — byte-identical across runs and across concurrent
//! clients, which the stress harness asserts under `--jobs`.
//!
//! Per-query metrics (`serve-query` events: op, outcome, microseconds)
//! go to *stderr* so stdout stays deterministic. An optional per-query
//! budget turns over-deadline answers into `"error": "budget"`
//! responses instead of stalling the daemon.

use pta_core::{Def, FactQuery, LocId, PtSet, Pta};
use pta_lint::Diagnostic;
use pta_simple::{CallSiteId, StmtId};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A parsed flat-JSON scalar.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Val {
    fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u32(&self) -> Option<u32> {
        match self {
            Val::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }

    /// Renders the value back as a JSON token (for echoing `id`).
    fn render(&self) -> String {
        match self {
            Val::Str(s) => json_str(s),
            Val::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Val::Bool(b) => b.to_string(),
            Val::Null => "null".to_owned(),
        }
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one flat JSON object (string/number/bool/null values only —
/// the full request grammar of the protocol). Hand-rolled because the
/// build environment is offline; no serde available.
fn parse_flat(line: &str) -> Result<BTreeMap<String, Val>, String> {
    let b = line.trim().as_bytes();
    let mut i = 0usize;
    let err = |msg: &str, at: usize| format!("{msg} at byte {at}");
    let skip_ws = |b: &[u8], i: &mut usize| {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |b: &[u8], i: &mut usize| -> Result<String, String> {
        if b.get(*i) != Some(&b'"') {
            return Err(err("expected string", *i));
        }
        *i += 1;
        let mut s = String::new();
        loop {
            match b.get(*i) {
                None => return Err(err("unterminated string", *i)),
                Some(b'"') => {
                    *i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*i + 1..*i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| err("bad \\u escape", *i))?;
                            let v = u32::from_str_radix(hex, 16)
                                .map_err(|_| err("bad \\u escape", *i))?;
                            s.push(char::from_u32(v).ok_or_else(|| err("bad \\u escape", *i))?);
                            *i += 4;
                        }
                        _ => return Err(err("bad escape", *i)),
                    }
                    *i += 1;
                }
                Some(&c) => {
                    // Collect the full UTF-8 sequence.
                    let ch_len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = b
                        .get(*i..*i + ch_len)
                        .and_then(|ch| std::str::from_utf8(ch).ok())
                        .ok_or_else(|| err("bad UTF-8", *i))?;
                    s.push_str(chunk);
                    *i += ch_len;
                }
            }
        }
    };

    skip_ws(b, &mut i);
    if b.get(i) != Some(&b'{') {
        return Err(err("expected `{`", i));
    }
    i += 1;
    let mut map = BTreeMap::new();
    skip_ws(b, &mut i);
    if b.get(i) == Some(&b'}') {
        i += 1;
    } else {
        loop {
            skip_ws(b, &mut i);
            let key = parse_string(b, &mut i)?;
            skip_ws(b, &mut i);
            if b.get(i) != Some(&b':') {
                return Err(err("expected `:`", i));
            }
            i += 1;
            skip_ws(b, &mut i);
            let val = match b.get(i) {
                Some(b'"') => Val::Str(parse_string(b, &mut i)?),
                Some(b't') if b[i..].starts_with(b"true") => {
                    i += 4;
                    Val::Bool(true)
                }
                Some(b'f') if b[i..].starts_with(b"false") => {
                    i += 5;
                    Val::Bool(false)
                }
                Some(b'n') if b[i..].starts_with(b"null") => {
                    i += 4;
                    Val::Null
                }
                Some(c) if c.is_ascii_digit() || *c == b'-' => {
                    let start = i;
                    while i < b.len()
                        && (b[i].is_ascii_digit()
                            || b[i] == b'-'
                            || b[i] == b'+'
                            || b[i] == b'.'
                            || b[i] == b'e'
                            || b[i] == b'E')
                    {
                        i += 1;
                    }
                    let n: f64 = std::str::from_utf8(&b[start..i])
                        .ok()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad number", start))?;
                    Val::Num(n)
                }
                _ => return Err(err("expected a scalar value", i)),
            };
            map.insert(key, val);
            skip_ws(b, &mut i);
            match b.get(i) {
                Some(b',') => i += 1,
                Some(b'}') => {
                    i += 1;
                    break;
                }
                _ => return Err(err("expected `,` or `}`", i)),
            }
        }
    }
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(err("trailing bytes after object", i));
    }
    Ok(map)
}

/// One metrics record of a served query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryMetrics {
    /// The requested operation (or `?` when unparsable).
    pub op: String,
    /// Whether the query succeeded.
    pub ok: bool,
    /// Wall-clock service time in microseconds.
    pub micros: u128,
}

impl QueryMetrics {
    /// Renders the record as a `serve-query` JSONL event (the trace
    /// schema's shape: an `ev` tag plus flat fields).
    pub fn render(&self) -> String {
        format!(
            "{{\"ev\":\"serve-query\",\"op\":{},\"ok\":{},\"us\":{}}}",
            json_str(&self.op),
            self.ok,
            self.micros
        )
    }
}

/// The query engine behind `pta serve`: an analysed program, its lint
/// findings, and an optional per-query time budget.
pub struct ServeEngine {
    pta: Pta,
    lint: Vec<Diagnostic>,
    budget: Option<Duration>,
}

impl ServeEngine {
    /// Wraps an analysed program and its lint findings.
    pub fn new(pta: Pta, lint: Vec<Diagnostic>) -> Self {
        ServeEngine {
            pta,
            lint,
            budget: None,
        }
    }

    /// Sets a per-query wall-clock budget: queries that overrun answer
    /// `"error": "budget"` instead of their result.
    pub fn with_budget(mut self, budget: Option<Duration>) -> Self {
        self.budget = budget;
        self
    }

    /// The analysed program.
    pub fn pta(&self) -> &Pta {
        &self.pta
    }

    /// Serves one request line; always returns exactly one response
    /// line (no trailing newline) plus the metrics record for it.
    pub fn handle_line(&self, line: &str) -> (String, QueryMetrics) {
        let t0 = Instant::now();
        let (id, op, body) = match parse_flat(line) {
            Ok(req) => {
                let id = req.get("id").cloned().unwrap_or(Val::Null);
                let op = req
                    .get("op")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_owned();
                let body = self.dispatch(&op, &req);
                (id, op, body)
            }
            Err(e) => (Val::Null, "?".to_owned(), Err(format!("bad request: {e}"))),
        };
        let elapsed = t0.elapsed();
        let over = self.budget.is_some_and(|b| elapsed > b);
        let body = if over { Err("budget".to_owned()) } else { body };
        let (ok, payload) = match body {
            Ok(fields) => (true, fields),
            Err(msg) => (false, format!(",\"error\":{}", json_str(&msg))),
        };
        let line = format!("{{\"id\":{},\"ok\":{}{}}}", id.render(), ok, payload);
        let metrics = QueryMetrics {
            op,
            ok,
            micros: elapsed.as_micros(),
        };
        (line, metrics)
    }

    /// Routes one parsed request. `Ok` carries extra response fields
    /// (each starting with a comma), `Err` a message.
    fn dispatch(&self, op: &str, req: &BTreeMap<String, Val>) -> Result<String, String> {
        match op {
            "points-to" => self.op_points_to(req),
            "aliases?" => self.op_aliases(req),
            "call-targets" => self.op_call_targets(req),
            "lint" => self.op_lint(req),
            "?" => Err("missing op".to_owned()),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    fn str_param<'a>(&self, req: &'a BTreeMap<String, Val>, key: &str) -> Result<&'a str, String> {
        req.get(key)
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("missing string parameter `{key}`"))
    }

    /// The points-to set at `stmt`, or the exit set of `main` when the
    /// request names no program point.
    fn set_at(&self, req: &BTreeMap<String, Val>) -> Result<PtSet, String> {
        match req.get("stmt") {
            None | Some(Val::Null) => Ok(self.pta.result.exit_set.clone()),
            Some(v) => {
                let stmt = v.as_u32().ok_or("bad `stmt` parameter")?;
                if stmt >= self.pta.ir.n_stmts {
                    return Err(format!("no such program point s{stmt}"));
                }
                Ok(self.pta.result.at(StmtId(stmt)))
            }
        }
    }

    fn resolve(&self, func: &str, var: &str) -> Result<LocId, String> {
        self.pta
            .loc_of(func, var)
            .ok_or_else(|| format!("unknown location `{var}` in `{func}`"))
    }

    fn op_points_to(&self, req: &BTreeMap<String, Val>) -> Result<String, String> {
        let func = self.str_param(req, "func")?;
        let var = self.str_param(req, "var")?;
        let src = self.resolve(func, var)?;
        let set = self.set_at(req)?;
        let mut targets: Vec<(String, Def)> = set
            .targets(src)
            .filter(|(t, _)| !self.pta.result.locs.is_null(*t))
            .map(|(t, d)| (self.pta.result.locs.name(t).to_owned(), d))
            .collect();
        targets.sort();
        let rendered: Vec<String> = targets
            .iter()
            .map(|(n, d)| {
                format!(
                    "{{\"name\":{},\"def\":\"{}\"}}",
                    json_str(n),
                    match d {
                        Def::D => "D",
                        Def::P => "P",
                    }
                )
            })
            .collect();
        Ok(format!(",\"targets\":[{}]", rendered.join(",")))
    }

    fn op_aliases(&self, req: &BTreeMap<String, Val>) -> Result<String, String> {
        let a = self.resolve(
            self.str_param(req, "a_func")?,
            self.str_param(req, "a_var")?,
        )?;
        let b = self.resolve(
            self.str_param(req, "b_func")?,
            self.str_param(req, "b_var")?,
        )?;
        let set = self.set_at(req)?;
        // Alias verdict on the definitely/possibly lattice: a common
        // non-NULL target hit definitely by both sides makes the alias
        // definite; any common target makes it possible.
        let bt: BTreeMap<LocId, Def> = set
            .targets(b)
            .filter(|(t, _)| !self.pta.result.locs.is_null(*t))
            .collect();
        let mut verdict = "no";
        let mut common: Vec<String> = Vec::new();
        for (t, da) in set.targets(a) {
            if self.pta.result.locs.is_null(t) {
                continue;
            }
            if let Some(db) = bt.get(&t) {
                if da == Def::D && *db == Def::D {
                    verdict = "definitely";
                } else if verdict == "no" {
                    verdict = "possibly";
                }
                common.push(self.pta.result.locs.name(t).to_owned());
            }
        }
        common.sort();
        common.dedup();
        let rendered: Vec<String> = common.iter().map(|n| json_str(n)).collect();
        Ok(format!(
            ",\"alias\":{},\"common\":[{}]",
            json_str(verdict),
            rendered.join(",")
        ))
    }

    fn op_call_targets(&self, req: &BTreeMap<String, Val>) -> Result<String, String> {
        let site = req
            .get("site")
            .and_then(|v| v.as_u32())
            .ok_or("missing numeric parameter `site`")?;
        if site as usize >= self.pta.ir.call_sites.len() {
            return Err(format!("no such call site cs{site}"));
        }
        let q = FactQuery::new(&self.pta.ir, &self.pta.result);
        let names: Vec<String> = q
            .call_targets(CallSiteId(site))
            .into_iter()
            .map(|f| json_str(&self.pta.ir.function(f).name))
            .collect();
        Ok(format!(",\"targets\":[{}]", names.join(",")))
    }

    fn op_lint(&self, req: &BTreeMap<String, Val>) -> Result<String, String> {
        let filter = match req.get("function") {
            None | Some(Val::Null) => None,
            Some(v) => Some(v.as_str().ok_or("bad `function` parameter")?),
        };
        let rendered: Vec<String> = self
            .lint
            .iter()
            .filter(|d| filter.is_none_or(|f| d.function == f))
            .map(|d| {
                format!(
                    "{{\"check\":{},\"severity\":{},\"fidelity\":{},\"function\":{},\"message\":{}}}",
                    json_str(d.check_id),
                    json_str(d.severity.tag()),
                    json_str(d.fidelity.tag()),
                    json_str(&d.function),
                    json_str(&d.message)
                )
            })
            .collect();
        Ok(format!(",\"findings\":[{}]", rendered.join(",")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ServeEngine {
        let pta = pta_core::run_source(
            "int x, y;
             void set(int **p, int *v) { *p = v; }
             int main(void) { int *q; set(&q, &x); return *q; }",
        )
        .unwrap();
        let lint = pta_lint::lint_ir(
            &pta.ir,
            &pta.result,
            pta_core::Fidelity::ContextSensitive,
            &pta_lint::LintOptions::default(),
        );
        ServeEngine::new(pta, lint)
    }

    #[test]
    fn points_to_and_aliases_answer_deterministically() {
        let e = engine();
        let (r1, m) = e.handle_line(r#"{"id": 1, "op": "points-to", "func": "main", "var": "q"}"#);
        assert!(r1.starts_with("{\"id\":1,\"ok\":true"), "{r1}");
        assert!(r1.contains("\"name\":\"x\""), "{r1}");
        assert!(m.ok);
        let (r2, _) = e.handle_line(
            r#"{"id": 2, "op": "aliases?", "a_func": "main", "a_var": "q", "b_func": "main", "b_var": "q"}"#,
        );
        assert!(r2.contains("\"alias\":\"definitely\""), "{r2}");
        // Same request, same bytes.
        let (r1b, _) = e.handle_line(r#"{"id": 1, "op": "points-to", "func": "main", "var": "q"}"#);
        assert_eq!(r1, r1b);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let e = engine();
        let (r, m) = e.handle_line("not json");
        assert!(r.starts_with("{\"id\":null,\"ok\":false"), "{r}");
        assert!(!m.ok);
        let (r, _) = e.handle_line(r#"{"op": "nope"}"#);
        assert!(r.contains("unknown op"), "{r}");
        let (r, _) = e.handle_line(r#"{"op": "points-to", "func": "main", "var": "zz"}"#);
        assert!(r.contains("unknown location"), "{r}");
    }

    #[test]
    fn lint_filter_and_call_targets() {
        let e = engine();
        let (r, _) = e.handle_line(r#"{"op": "lint"}"#);
        assert!(r.contains("\"findings\":["), "{r}");
        let (r, _) = e.handle_line(r#"{"op": "call-targets", "site": 0}"#);
        assert!(r.contains("\"set\""), "{r}");
    }
}
