//! The `pta serve` query engine: a deterministic JSONL
//! request/response protocol over a loaded fact base.
//!
//! One request per line, one response per line. Requests are flat JSON
//! objects:
//!
//! ```text
//! {"id": 1, "op": "points-to", "func": "main", "var": "p", "stmt": 4}
//! {"id": 2, "op": "aliases?", "a_func": "main", "a_var": "p", "b_func": "main", "b_var": "q"}
//! {"id": 3, "op": "call-targets", "site": 0}
//! {"id": 4, "op": "lint", "function": "main"}
//! ```
//!
//! A line may also be a JSON *array* of request objects — a batch. The
//! response is then a JSON array of the individual responses, in
//! request order, still on one line ([`ServeEngine::handle_text`]).
//!
//! `stmt` is optional for `points-to`/`aliases?`; without it the query
//! runs against the exit set of `main`. Responses echo `id`, carry
//! `"ok": true|false`, and are rendered with sorted keys and sorted
//! fact lists — byte-identical across runs and across concurrent
//! clients, which the stress harness asserts under `--jobs` (and over
//! real socket connections, see the `server` module).
//!
//! Per-query metrics (`serve-query` events: op, outcome, microseconds,
//! and the program name on multi-tenant servers) go to *stderr* so
//! stdout stays deterministic. An optional per-query budget turns
//! over-deadline answers into `"error": "budget"` responses instead of
//! stalling the daemon. Errors of any kind — unparsable lines, unknown
//! ops, bad parameters — are answered as structured error objects;
//! they never terminate the serving loop.

use crate::json::{self, escape as json_str, Json};
use pta_core::{Def, FactQuery, LocId, PtSet, Pta};
use pta_lint::Diagnostic;
use pta_simple::{CallSiteId, StmtId};
use std::time::{Duration, Instant};

/// Most request objects a single batch array may carry; longer batches
/// are answered with one in-band `too-large` error instead of being
/// dispatched (an overload guard: one line must not buy unbounded
/// work).
pub const MAX_BATCH_ITEMS: usize = 1024;

/// The in-band error message for an over-long batch.
pub(crate) fn batch_too_large(n: usize) -> String {
    format!("too-large: batch of {n} requests exceeds {MAX_BATCH_ITEMS}")
}

/// One metrics record of a served query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryMetrics {
    /// The requested operation (or `?` when unparsable).
    pub op: String,
    /// Whether the query succeeded.
    pub ok: bool,
    /// Wall-clock service time in microseconds.
    pub micros: u128,
    /// The program (tenant) that answered, when the engine is labelled.
    pub program: Option<String>,
}

impl QueryMetrics {
    /// Renders the record as a `serve-query` JSONL event (the trace
    /// schema's shape: an `ev` tag plus flat fields).
    pub fn render(&self) -> String {
        let program = match &self.program {
            Some(p) => format!(",\"program\":{}", json_str(p)),
            None => String::new(),
        };
        format!(
            "{{\"ev\":\"serve-query\",\"op\":{},\"ok\":{},\"us\":{}{}}}",
            json_str(&self.op),
            self.ok,
            self.micros,
            program
        )
    }
}

/// The query engine behind `pta serve`: an analysed program, its lint
/// findings, and an optional per-query time budget.
pub struct ServeEngine {
    pta: Pta,
    lint: Vec<Diagnostic>,
    budget: Option<Duration>,
    program: Option<String>,
}

impl ServeEngine {
    /// Wraps an analysed program and its lint findings.
    pub fn new(pta: Pta, lint: Vec<Diagnostic>) -> Self {
        ServeEngine {
            pta,
            lint,
            budget: None,
            program: None,
        }
    }

    /// Sets a per-query wall-clock budget: queries that overrun answer
    /// `"error": "budget"` instead of their result.
    pub fn with_budget(mut self, budget: Option<Duration>) -> Self {
        self.budget = budget;
        self
    }

    /// Labels the engine with its tenant name; the label rides along on
    /// every metrics record.
    pub fn with_program(mut self, name: impl Into<String>) -> Self {
        self.program = Some(name.into());
        self
    }

    /// The analysed program.
    pub fn pta(&self) -> &Pta {
        &self.pta
    }

    /// Serves one request *line* (a single JSON object); always returns
    /// exactly one response line (no trailing newline) plus the metrics
    /// record for it. Batch arrays are rejected here — use
    /// [`ServeEngine::handle_text`] for the full line grammar.
    pub fn handle_line(&self, line: &str) -> (String, QueryMetrics) {
        match json::parse(line.trim()) {
            Ok(req) => self.handle_request(&req),
            Err(e) => self.error_line(&format!("bad request: {e}")),
        }
    }

    /// Serves one *text* line of the wire protocol: a single request
    /// object, or a batch (JSON array of request objects) answered as a
    /// JSON array of responses in request order. Unparsable lines get a
    /// single structured error object; batches beyond
    /// [`MAX_BATCH_ITEMS`] get an in-band `too-large` error.
    pub fn handle_text(&self, line: &str) -> (String, Vec<QueryMetrics>) {
        match json::parse(line.trim()) {
            Ok(Json::Arr(items)) if items.len() > MAX_BATCH_ITEMS => {
                let (resp, m) = self.error_line(&batch_too_large(items.len()));
                (resp, vec![m])
            }
            Ok(Json::Arr(items)) => {
                let mut parts = Vec::with_capacity(items.len());
                let mut metrics = Vec::with_capacity(items.len());
                for item in &items {
                    let (resp, m) = self.handle_request(item);
                    parts.push(resp);
                    metrics.push(m);
                }
                (format!("[{}]", parts.join(",")), metrics)
            }
            Ok(req) => {
                let (resp, m) = self.handle_request(&req);
                (resp, vec![m])
            }
            Err(e) => {
                let (resp, m) = self.error_line(&format!("bad request: {e}"));
                (resp, vec![m])
            }
        }
    }

    /// Serves one parsed request value.
    pub fn handle_request(&self, req: &Json) -> (String, QueryMetrics) {
        let t0 = Instant::now();
        let id = req.get("id").cloned().unwrap_or(Json::Null);
        let op = match req {
            Json::Obj(_) => req
                .get("op")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_owned(),
            _ => "?".to_owned(),
        };
        let body = if req.is_obj() {
            self.dispatch(&op, req)
        } else {
            Err("bad request: expected a request object".to_owned())
        };
        let elapsed = t0.elapsed();
        let over = self.budget.is_some_and(|b| elapsed > b);
        let body = if over { Err("budget".to_owned()) } else { body };
        let (ok, payload) = match body {
            Ok(fields) => (true, fields),
            Err(msg) => (false, format!(",\"error\":{}", json_str(&msg))),
        };
        let line = format!("{{\"id\":{},\"ok\":{}{}}}", id.render(), ok, payload);
        let metrics = QueryMetrics {
            op,
            ok,
            micros: elapsed.as_micros(),
            program: self.program.clone(),
        };
        (line, metrics)
    }

    /// A structured error response for a line that never reached
    /// dispatch (unparsable, invalid UTF-8, ...).
    pub fn error_line(&self, msg: &str) -> (String, QueryMetrics) {
        (
            format!("{{\"id\":null,\"ok\":false,\"error\":{}}}", json_str(msg)),
            QueryMetrics {
                op: "?".to_owned(),
                ok: false,
                micros: 0,
                program: self.program.clone(),
            },
        )
    }

    /// Routes one parsed request. `Ok` carries extra response fields
    /// (each starting with a comma), `Err` a message.
    fn dispatch(&self, op: &str, req: &Json) -> Result<String, String> {
        match op {
            "points-to" => self.op_points_to(req),
            "aliases?" => self.op_aliases(req),
            "call-targets" => self.op_call_targets(req),
            "lint" => self.op_lint(req),
            "?" => Err("missing op".to_owned()),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    fn str_param<'a>(&self, req: &'a Json, key: &str) -> Result<&'a str, String> {
        req.get(key)
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("missing string parameter `{key}`"))
    }

    /// The points-to set at `stmt`, or the exit set of `main` when the
    /// request names no program point.
    fn set_at(&self, req: &Json) -> Result<PtSet, String> {
        match req.get("stmt") {
            None | Some(Json::Null) => Ok(self.pta.result.exit_set.clone()),
            Some(v) => {
                let stmt = v.as_u32().ok_or("bad `stmt` parameter")?;
                if stmt >= self.pta.ir.n_stmts {
                    return Err(format!("no such program point s{stmt}"));
                }
                Ok(self.pta.result.at(StmtId(stmt)))
            }
        }
    }

    fn resolve(&self, func: &str, var: &str) -> Result<LocId, String> {
        self.pta
            .loc_of(func, var)
            .ok_or_else(|| format!("unknown location `{var}` in `{func}`"))
    }

    fn op_points_to(&self, req: &Json) -> Result<String, String> {
        let func = self.str_param(req, "func")?;
        let var = self.str_param(req, "var")?;
        let src = self.resolve(func, var)?;
        let set = self.set_at(req)?;
        let mut targets: Vec<(String, Def)> = set
            .targets(src)
            .filter(|(t, _)| !self.pta.result.locs.is_null(*t))
            .map(|(t, d)| (self.pta.result.locs.name(t).to_owned(), d))
            .collect();
        targets.sort();
        let rendered: Vec<String> = targets
            .iter()
            .map(|(n, d)| {
                format!(
                    "{{\"name\":{},\"def\":\"{}\"}}",
                    json_str(n),
                    match d {
                        Def::D => "D",
                        Def::P => "P",
                    }
                )
            })
            .collect();
        Ok(format!(",\"targets\":[{}]", rendered.join(",")))
    }

    fn op_aliases(&self, req: &Json) -> Result<String, String> {
        let a = self.resolve(
            self.str_param(req, "a_func")?,
            self.str_param(req, "a_var")?,
        )?;
        let b = self.resolve(
            self.str_param(req, "b_func")?,
            self.str_param(req, "b_var")?,
        )?;
        let set = self.set_at(req)?;
        // Alias verdict on the definitely/possibly lattice: a common
        // non-NULL target hit definitely by both sides makes the alias
        // definite; any common target makes it possible.
        let bt: std::collections::BTreeMap<LocId, Def> = set
            .targets(b)
            .filter(|(t, _)| !self.pta.result.locs.is_null(*t))
            .collect();
        let mut verdict = "no";
        let mut common: Vec<String> = Vec::new();
        for (t, da) in set.targets(a) {
            if self.pta.result.locs.is_null(t) {
                continue;
            }
            if let Some(db) = bt.get(&t) {
                if da == Def::D && *db == Def::D {
                    verdict = "definitely";
                } else if verdict == "no" {
                    verdict = "possibly";
                }
                common.push(self.pta.result.locs.name(t).to_owned());
            }
        }
        common.sort();
        common.dedup();
        let rendered: Vec<String> = common.iter().map(|n| json_str(n)).collect();
        Ok(format!(
            ",\"alias\":{},\"common\":[{}]",
            json_str(verdict),
            rendered.join(",")
        ))
    }

    fn op_call_targets(&self, req: &Json) -> Result<String, String> {
        let site = req
            .get("site")
            .and_then(|v| v.as_u32())
            .ok_or("missing numeric parameter `site`")?;
        if site as usize >= self.pta.ir.call_sites.len() {
            return Err(format!("no such call site cs{site}"));
        }
        let q = FactQuery::new(&self.pta.ir, &self.pta.result);
        let names: Vec<String> = q
            .call_targets(CallSiteId(site))
            .into_iter()
            .map(|f| json_str(&self.pta.ir.function(f).name))
            .collect();
        Ok(format!(",\"targets\":[{}]", names.join(",")))
    }

    fn op_lint(&self, req: &Json) -> Result<String, String> {
        let filter = match req.get("function") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_str().ok_or("bad `function` parameter")?),
        };
        let rendered: Vec<String> = self
            .lint
            .iter()
            .filter(|d| filter.is_none_or(|f| d.function == f))
            .map(|d| {
                format!(
                    "{{\"check\":{},\"severity\":{},\"fidelity\":{},\"function\":{},\"message\":{}}}",
                    json_str(d.check_id),
                    json_str(d.severity.tag()),
                    json_str(d.fidelity.tag()),
                    json_str(&d.function),
                    json_str(&d.message)
                )
            })
            .collect();
        Ok(format!(",\"findings\":[{}]", rendered.join(",")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ServeEngine {
        let pta = pta_core::run_source(
            "int x, y;
             void set(int **p, int *v) { *p = v; }
             int main(void) { int *q; set(&q, &x); return *q; }",
        )
        .unwrap();
        let lint = pta_lint::lint_ir(
            &pta.ir,
            &pta.result,
            pta_core::Fidelity::ContextSensitive,
            &pta_lint::LintOptions::default(),
        );
        ServeEngine::new(pta, lint)
    }

    #[test]
    fn points_to_and_aliases_answer_deterministically() {
        let e = engine();
        let (r1, m) = e.handle_line(r#"{"id": 1, "op": "points-to", "func": "main", "var": "q"}"#);
        assert!(r1.starts_with("{\"id\":1,\"ok\":true"), "{r1}");
        assert!(r1.contains("\"name\":\"x\""), "{r1}");
        assert!(m.ok);
        let (r2, _) = e.handle_line(
            r#"{"id": 2, "op": "aliases?", "a_func": "main", "a_var": "q", "b_func": "main", "b_var": "q"}"#,
        );
        assert!(r2.contains("\"alias\":\"definitely\""), "{r2}");
        // Same request, same bytes.
        let (r1b, _) = e.handle_line(r#"{"id": 1, "op": "points-to", "func": "main", "var": "q"}"#);
        assert_eq!(r1, r1b);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let e = engine();
        let (r, m) = e.handle_line("not json");
        assert!(r.starts_with("{\"id\":null,\"ok\":false"), "{r}");
        assert!(!m.ok);
        let (r, _) = e.handle_line(r#"{"op": "nope"}"#);
        assert!(r.contains("unknown op"), "{r}");
        let (r, _) = e.handle_line(r#"{"op": "points-to", "func": "main", "var": "zz"}"#);
        assert!(r.contains("unknown location"), "{r}");
    }

    #[test]
    fn lint_filter_and_call_targets() {
        let e = engine();
        let (r, _) = e.handle_line(r#"{"op": "lint"}"#);
        assert!(r.contains("\"findings\":["), "{r}");
        let (r, _) = e.handle_line(r#"{"op": "call-targets", "site": 0}"#);
        assert!(r.contains("\"set\""), "{r}");
    }

    #[test]
    fn batches_answer_an_array_of_individual_responses() {
        let e = engine();
        let q1 = r#"{"id":1,"op":"points-to","func":"main","var":"q"}"#;
        let q2 = r#"{"id":2,"op":"call-targets","site":0}"#;
        let (r1, _) = e.handle_line(q1);
        let (r2, _) = e.handle_line(q2);
        let (batch, metrics) = e.handle_text(&format!("[{q1},{q2}]"));
        assert_eq!(batch, format!("[{r1},{r2}]"));
        assert_eq!(metrics.len(), 2);
        // Empty batch, empty response, no metrics.
        let (empty, m) = e.handle_text("[]");
        assert_eq!(empty, "[]");
        assert!(m.is_empty());
        // A non-object batch element is an in-band error.
        let (r, _) = e.handle_text("[42]");
        assert!(r.starts_with("[{\"id\":null,\"ok\":false"), "{r}");
    }

    #[test]
    fn program_label_rides_on_metrics() {
        let e = engine().with_program("hash");
        let (_, m) = e.handle_line(r#"{"op":"lint"}"#);
        assert_eq!(m.program.as_deref(), Some("hash"));
        assert!(
            m.render().contains("\"program\":\"hash\""),
            "{}",
            m.render()
        );
        let (_, m) = engine().handle_line(r#"{"op":"lint"}"#);
        assert!(!m.render().contains("program"), "{}", m.render());
    }
}
