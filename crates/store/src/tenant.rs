//! Multi-tenant snapshot management for the query server.
//!
//! A *tenant* is one program behind the server: a C source file plus
//! its on-disk snapshot. The [`TenantCache`] keeps at most `capacity`
//! tenants analysed and resident at once, evicting the least recently
//! used; each resident tenant lives behind a [`Shared`] handle, so
//!
//! - every connection answers from the same immutable `Arc` (snapshots
//!   are never re-parsed per connection), and
//! - when the files behind a tenant change on disk, the next query
//!   rebuilds and *swaps* the snapshot: requests already in flight
//!   finish against the old `Arc` (it drains), new requests see the
//!   new facts ([`Shared`]'s contract).
//!
//! Builds reuse the `store` pipeline unchanged: warm from the snapshot
//! when it is usable, degrade to a cold analysis on any corruption, and
//! save the fresh snapshot back. Staleness is detected by file stamps
//! (length + mtime) on *both* the source and the store file; the stamp
//! is taken after the save-back so the server's own write never looks
//! like an external change.
//!
//! The [`Router`] is the request-level face of the cache: it resolves
//! each request's `"program"` field (optional when a single tenant is
//! configured) to an engine and answers, with per-request errors kept
//! in-band — exactly the [`crate::serve`] protocol plus one field.

use crate::json::{self, escape as json_str, Json};
use crate::serve::{QueryMetrics, ServeEngine};
use crate::{analyze_incremental, ColdReason, WarmMode};
use pta_core::{AnalysisConfig, Pta, ServeEvent, Shared};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One program the server can answer for.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// The tenant name clients select with `"program"` (by default the
    /// source file stem).
    pub name: String,
    /// The C source file.
    pub source: PathBuf,
    /// The snapshot path (need not exist yet).
    pub store: PathBuf,
}

impl TenantSpec {
    /// Builds a spec from a source path: the tenant is named after the
    /// file stem and its snapshot lives at `store_dir/<stem>.ptas`.
    pub fn from_source(source: &Path, store_dir: &Path) -> TenantSpec {
        let stem = source
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| source.to_string_lossy().into_owned());
        TenantSpec {
            store: store_dir.join(format!("{stem}.ptas")),
            name: stem,
            source: source.to_owned(),
        }
    }
}

/// A length + mtime stamp of a file; `None` for a missing file. Equal
/// stamps mean "unchanged" for reload purposes.
type FileStamp = Option<(u64, std::time::SystemTime)>;

fn stamp(path: &Path) -> FileStamp {
    std::fs::metadata(path)
        .ok()
        .and_then(|m| Some((m.len(), m.modified().ok()?)))
}

/// A resident, analysed tenant: the query engine plus a human-readable
/// description of how it was built (for the startup/reload log line).
pub struct LoadedTenant {
    /// The tenant name.
    pub name: String,
    /// The engine answering queries for this tenant.
    pub engine: ServeEngine,
    /// `"warm start (...)"` / `"cold start (...)"`.
    pub mode: String,
}

struct Resident {
    handle: Arc<Shared<LoadedTenant>>,
    source_stamp: FileStamp,
    store_stamp: FileStamp,
    /// LRU clock value of the last touch.
    tick: u64,
}

struct CacheState {
    resident: Vec<(usize, Resident)>, // spec index -> resident entry
    clock: u64,
    builds: u64,
    evictions: u64,
}

/// An LRU cache of analysed tenants (see the module docs).
pub struct TenantCache {
    specs: Vec<TenantSpec>,
    capacity: usize,
    config: AnalysisConfig,
    budget: Option<Duration>,
    state: Mutex<CacheState>,
}

impl TenantCache {
    /// A cache over `specs` keeping at most `capacity` tenants resident.
    ///
    /// `budget` is the per-query deadline handed to every engine.
    pub fn new(
        specs: Vec<TenantSpec>,
        capacity: usize,
        config: AnalysisConfig,
        budget: Option<Duration>,
    ) -> TenantCache {
        TenantCache {
            specs,
            capacity: capacity.max(1),
            config,
            budget,
            state: Mutex::new(CacheState {
                resident: Vec::new(),
                clock: 0,
                builds: 0,
                evictions: 0,
            }),
        }
    }

    /// The configured tenant names, in configuration order.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.specs.iter().map(|s| s.name.as_str()).collect()
    }

    /// How many tenant builds (initial loads + reloads) have run.
    pub fn build_count(&self) -> u64 {
        self.state.lock().expect("tenant cache lock").builds
    }

    /// How many residents the LRU policy has evicted.
    pub fn eviction_count(&self) -> u64 {
        self.state.lock().expect("tenant cache lock").evictions
    }

    /// Resolves a request's program selector to a resident tenant,
    /// loading / reloading / evicting as needed.
    ///
    /// # Errors
    ///
    /// A protocol-level message: unknown program, ambiguous default, or
    /// a build failure (unreadable source, front-end or analysis error).
    pub fn resolve(&self, program: Option<&str>) -> Result<Arc<LoadedTenant>, String> {
        let idx = match program {
            Some(name) => self
                .specs
                .iter()
                .position(|s| s.name == name)
                .ok_or_else(|| format!("unknown program `{name}`"))?,
            None if self.specs.len() == 1 => 0,
            None => {
                return Err(format!(
                    "missing `program` (serving: {})",
                    self.tenant_names().join(", ")
                ))
            }
        };
        let spec = &self.specs[idx];
        let mut state = self.state.lock().expect("tenant cache lock");
        // Stamp under the lock: builds and their snapshot save-backs
        // also run under it, so a stamp can never observe a half-done
        // sibling build (which would read as an external change and
        // force a spurious rebuild).
        let source_stamp = stamp(&spec.source);
        let store_stamp = stamp(&spec.store);
        state.clock += 1;
        let clock = state.clock;
        if let Some((_, r)) = state.resident.iter_mut().find(|(i, _)| *i == idx) {
            r.tick = clock;
            if r.source_stamp == source_stamp && r.store_stamp == store_stamp {
                return Ok(r.handle.load());
            }
            // Stale on disk: rebuild and swap. In-flight queries keep
            // their old `Arc`; the swap is what new queries observe.
            let built = build_tenant(spec, &self.config, self.budget)?;
            state.builds += 1;
            ServeEvent::Reload {
                program: spec.name.clone(),
                mode: built.mode.clone(),
            }
            .emit();
            let r = state
                .resident
                .iter_mut()
                .find(|(i, _)| *i == idx)
                .expect("entry still resident");
            // Stamp *after* the build's save-back, so our own snapshot
            // write does not read as another external change.
            r.1.source_stamp = stamp(&spec.source);
            r.1.store_stamp = stamp(&spec.store);
            let shared = Arc::new(built);
            r.1.handle.swap_arc(Arc::clone(&shared));
            return Ok(shared);
        }
        // Miss: build, insert, evict past capacity.
        let built = build_tenant(spec, &self.config, self.budget)?;
        state.builds += 1;
        let handle = Arc::new(Shared::new(built));
        let loaded = handle.load();
        state.resident.push((
            idx,
            Resident {
                handle,
                source_stamp: stamp(&spec.source),
                store_stamp: stamp(&spec.store),
                tick: clock,
            },
        ));
        while state.resident.len() > self.capacity {
            let oldest = state
                .resident
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, r))| r.tick)
                .map(|(pos, _)| pos)
                .expect("non-empty resident list");
            let (spec_idx, _) = state.resident.remove(oldest);
            state.evictions += 1;
            ServeEvent::Evict {
                program: self.specs[spec_idx].name.clone(),
            }
            .emit();
        }
        Ok(loaded)
    }
}

/// Analyses one tenant through the incremental pipeline: warm from its
/// snapshot when usable, cold on any store-level problem, and save the
/// fresh snapshot back (best effort).
fn build_tenant(
    spec: &TenantSpec,
    config: &AnalysisConfig,
    budget: Option<Duration>,
) -> Result<LoadedTenant, String> {
    let source = std::fs::read_to_string(&spec.source)
        .map_err(|e| format!("cannot read `{}`: {e}", spec.source.display()))?;
    let ir = pta_simple::compile(&source).map_err(|e| format!("`{}`: {e}", spec.name))?;
    let snap = match crate::load(&spec.store) {
        Ok(s) => Some(s),
        Err(e) => {
            // A fault here (corruption, torn read, injected failure)
            // costs the warm start, never the answer: the build below
            // degrades to a cold run.
            if spec.store.exists() {
                ServeEvent::Degraded {
                    program: spec.name.clone(),
                    stage: "load".to_owned(),
                    reason: e.to_string(),
                }
                .emit();
            }
            None
        }
    };
    let inc = analyze_incremental(&ir, config, snap.as_ref())
        .map_err(|e| format!("`{}`: {e}", spec.name))?;
    let mode = match &inc.mode {
        WarmMode::Warm {
            seed_hits, dirty, ..
        } => format!(
            "warm start ({seed_hits} replayed pairs, {} dirty functions)",
            dirty.len()
        ),
        WarmMode::Cold(r) => {
            if let ColdReason::Store(e) = r {
                ServeEvent::Degraded {
                    program: spec.name.clone(),
                    stage: "load".to_owned(),
                    reason: e.to_string(),
                }
                .emit();
            }
            format!("cold start ({r:?})")
        }
    };
    let lint = pta_lint::lint_ir(
        &ir,
        &inc.run.result,
        pta_core::Fidelity::ContextSensitive,
        &pta_lint::LintOptions::default(),
    );
    let rebuilt = crate::Snapshot::build(&ir, config, &inc.run, &lint);
    if let Err(e) = crate::save(&spec.store, &rebuilt) {
        // Atomic save: a failed write-back leaves the old snapshot (or
        // none) intact. The server keeps answering from memory; only
        // the *next* process's warm start is at stake.
        ServeEvent::Degraded {
            program: spec.name.clone(),
            stage: "save".to_owned(),
            reason: e.to_string(),
        }
        .emit();
        eprintln!("pta serve: cannot write snapshot for `{}`: {e}", spec.name);
    }
    let engine = ServeEngine::new(
        Pta {
            ir,
            result: inc.run.result,
        },
        lint,
    )
    .with_budget(budget)
    .with_program(&spec.name);
    Ok(LoadedTenant {
        name: spec.name.clone(),
        engine,
        mode,
    })
}

/// Renders a protocol error response that still echoes the request id.
pub fn error_response(id: &Json, msg: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"error\":{}}}",
        id.render(),
        json_str(msg)
    )
}

/// The multi-tenant request handler: resolves each request's
/// `"program"` field against a [`TenantCache`] and dispatches to that
/// tenant's engine. Wire-compatible with the single-snapshot protocol —
/// with one tenant configured, `"program"` is optional.
pub struct Router {
    cache: TenantCache,
}

impl Router {
    /// Wraps a cache.
    pub fn new(cache: TenantCache) -> Router {
        Router { cache }
    }

    /// The underlying cache (tests read its counters).
    pub fn cache(&self) -> &TenantCache {
        &self.cache
    }

    fn handle_one(&self, req: &Json) -> (String, QueryMetrics) {
        if !req.is_obj() {
            return (
                error_response(&Json::Null, "bad request: expected a request object"),
                QueryMetrics {
                    op: "?".to_owned(),
                    ok: false,
                    micros: 0,
                    program: None,
                },
            );
        }
        let program = req.get("program").and_then(|v| v.as_str());
        match self.cache.resolve(program) {
            Ok(tenant) => tenant.engine.handle_request(req),
            Err(msg) => {
                let id = req.get("id").cloned().unwrap_or(Json::Null);
                (
                    error_response(&id, &msg),
                    QueryMetrics {
                        op: req
                            .get("op")
                            .and_then(|v| v.as_str())
                            .unwrap_or("?")
                            .to_owned(),
                        ok: false,
                        micros: 0,
                        program: program.map(str::to_owned),
                    },
                )
            }
        }
    }

    /// Serves one text line: a request object or a batch array, exactly
    /// as [`ServeEngine::handle_text`], with per-request tenant routing.
    pub fn handle_text(&self, line: &str) -> (String, Vec<QueryMetrics>) {
        match json::parse(line.trim()) {
            Ok(Json::Arr(items)) if items.len() > crate::serve::MAX_BATCH_ITEMS => {
                let msg = crate::serve::batch_too_large(items.len());
                (
                    error_response(&Json::Null, &msg),
                    vec![QueryMetrics {
                        op: "?".to_owned(),
                        ok: false,
                        micros: 0,
                        program: None,
                    }],
                )
            }
            Ok(Json::Arr(items)) => {
                let mut parts = Vec::with_capacity(items.len());
                let mut metrics = Vec::with_capacity(items.len());
                for item in &items {
                    let (resp, m) = self.handle_one(item);
                    parts.push(resp);
                    metrics.push(m);
                }
                (format!("[{}]", parts.join(",")), metrics)
            }
            Ok(req) => {
                let (resp, m) = self.handle_one(&req);
                (resp, vec![m])
            }
            Err(e) => {
                let msg = format!("bad request: {e}");
                (
                    error_response(&Json::Null, &msg),
                    vec![QueryMetrics {
                        op: "?".to_owned(),
                        ok: false,
                        micros: 0,
                        program: None,
                    }],
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tenant(dir: &Path, name: &str, source: &str) -> TenantSpec {
        let src = dir.join(format!("{name}.c"));
        std::fs::write(&src, source).unwrap();
        TenantSpec::from_source(&src, dir)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pta-tenant-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    const PROG_A: &str = "int x; int main(void) { int *p; p = &x; return *p; }";
    const PROG_B: &str = "int y; int main(void) { int *q; q = &y; return *q; }";

    #[test]
    fn single_tenant_needs_no_program_field() {
        let dir = tmpdir("single");
        let spec = write_tenant(&dir, "a", PROG_A);
        let cache = TenantCache::new(vec![spec], 4, AnalysisConfig::default(), None);
        let router = Router::new(cache);
        let (r, _) = router.handle_text(r#"{"id":1,"op":"points-to","func":"main","var":"p"}"#);
        assert!(r.contains("\"name\":\"x\""), "{r}");
        // Same request again: answered from cache, no rebuild.
        let _ = router.handle_text(r#"{"id":1,"op":"points-to","func":"main","var":"p"}"#);
        assert_eq!(router.cache().build_count(), 1);
    }

    #[test]
    fn programs_route_and_unknown_ones_error_in_band() {
        let dir = tmpdir("route");
        let a = write_tenant(&dir, "a", PROG_A);
        let b = write_tenant(&dir, "b", PROG_B);
        let cache = TenantCache::new(vec![a, b], 4, AnalysisConfig::default(), None);
        let router = Router::new(cache);
        let (ra, _) = router
            .handle_text(r#"{"id":1,"program":"a","op":"points-to","func":"main","var":"p"}"#);
        assert!(ra.contains("\"name\":\"x\""), "{ra}");
        let (rb, _) = router
            .handle_text(r#"{"id":2,"program":"b","op":"points-to","func":"main","var":"q"}"#);
        assert!(rb.contains("\"name\":\"y\""), "{rb}");
        let (r, m) = router.handle_text(r#"{"id":3,"program":"zz","op":"lint"}"#);
        assert_eq!(
            r,
            "{\"id\":3,\"ok\":false,\"error\":\"unknown program `zz`\"}"
        );
        assert!(!m[0].ok);
        // With two tenants, a request without `program` is ambiguous.
        let (r, _) = router.handle_text(r#"{"id":4,"op":"lint"}"#);
        assert!(r.contains("missing `program`"), "{r}");
    }

    #[test]
    fn lru_evicts_and_reload_sees_new_facts() {
        let dir = tmpdir("lru");
        let a = write_tenant(&dir, "a", PROG_A);
        let b = write_tenant(&dir, "b", PROG_B);
        let a_src = a.source.clone();
        let cache = TenantCache::new(vec![a, b], 1, AnalysisConfig::default(), None);
        let router = Router::new(cache);
        let q_a = r#"{"program":"a","op":"points-to","func":"main","var":"p"}"#;
        let q_b = r#"{"program":"b","op":"points-to","func":"main","var":"q"}"#;
        let (r1, _) = router.handle_text(q_a);
        let _ = router.handle_text(q_b); // capacity 1: evicts `a`
        assert_eq!(router.cache().eviction_count(), 1);
        let (r2, _) = router.handle_text(q_a); // rebuilt, byte-identical
        assert_eq!(r1, r2);
        assert_eq!(router.cache().build_count(), 3);
        // Rewrite `a` on disk (ensure the stamp moves even on coarse
        // mtime clocks by growing the file) and query again: the reload
        // must see the new fact base.
        std::fs::write(
            &a_src,
            "int x, z; int main(void) { int *p; p = &z; return *p; }",
        )
        .unwrap();
        let (r3, _) = router.handle_text(q_a);
        assert!(r3.contains("\"name\":\"z\""), "{r3}");
        assert!(!r3.contains("\"name\":\"x\""), "{r3}");
    }

    #[test]
    fn corrupt_snapshots_degrade_to_cold() {
        let dir = tmpdir("corrupt");
        let spec = write_tenant(&dir, "a", PROG_A);
        std::fs::write(&spec.store, "not a snapshot").unwrap();
        let cache = TenantCache::new(vec![spec.clone()], 2, AnalysisConfig::default(), None);
        let router = Router::new(cache);
        let (r, _) = router.handle_text(r#"{"id":1,"op":"points-to","func":"main","var":"p"}"#);
        assert!(r.contains("\"name\":\"x\""), "{r}");
        // The build healed the store: a fresh cache warms from it.
        let text = std::fs::read_to_string(&spec.store).unwrap();
        assert!(pta_store_verify_ok(&text));
    }

    fn pta_store_verify_ok(text: &str) -> bool {
        crate::verify(text).is_ok()
    }
}
