//! # pta-store — a versioned on-disk fact database
//!
//! Persists a completed analysis run — interned locations, the final
//! per-statement points-to facts, the invocation graph with its
//! memoized context pairs (and their captured side outputs), lint
//! findings, and per-function source fingerprints — into a single
//! deterministic snapshot file, and warms later runs from it:
//!
//! - [`Snapshot::build`] / [`save`] / [`load`] / [`verify`] move facts
//!   between the engine and disk; the [`format`] module defines the
//!   text encoding (header, schema version, payload checksum).
//! - [`warm_start`] validates a snapshot against a (possibly edited)
//!   program and harvests every *clean* memoized context pair — one
//!   whose entire invocation subtree only touches functions with
//!   unchanged fingerprints — as warm seeds.
//! - [`analyze_incremental`] is the drop-in entry point: warm when the
//!   snapshot is usable, and a graceful cold run (never a failure) on
//!   any [`StoreError`] — missing file, corruption, foreign version,
//!   changed skeleton or configuration.
//! - [`canonical_facts`] renders results at the *name* level so that a
//!   warm (incrementally re-analysed) run can be compared byte-for-byte
//!   against a cold run of the same program, which is the correctness
//!   contract the tier-1 tests pin down.
//! - [`serve`] answers `points-to` / `aliases?` / `call-targets` /
//!   `lint` queries over a loaded snapshot as a JSONL request/response
//!   protocol (the `pta serve` subcommand); [`tenant`] puts many
//!   programs behind one server (LRU snapshot cache, graceful reload)
//!   and [`server`] carries the protocol over TCP / Unix-domain
//!   sockets with per-connection scoped threads. [`json`] is the
//!   shared hand-rolled JSON layer beneath all of it.

pub mod fault;
pub mod format;
pub mod json;
pub mod serve;
pub mod server;
pub mod tenant;

pub use fault::{FaultMode, FaultPlan};
pub use format::{parse, serialize, FnRow, LintRow, NodeRow, Snapshot, StoreError, MAGIC};
pub use serve::ServeEngine;
pub use server::{connect, parse_listen, LineHandler, ListenAddr, Listener, ServeOptions};
pub use tenant::{Router, TenantCache, TenantSpec};

use pta_cfront::ast::FuncId;
use pta_core::analysis::{
    analyze_recorded, analyze_seeded, AnalysisConfig, AnalysisError, AnalysisResult, EngineRun,
    WarmPair, WarmSeeds, WarmStart,
};
use pta_core::fingerprint;
use pta_core::invocation_graph::{IgKind, IgNode, IgNodeId, InvocationGraph};
use pta_core::location::{LocBase, LocId, LocationTable};
use pta_core::points_to_set::{Def, PtSet};
use pta_lint::Diagnostic;
use pta_simple::{CallSiteId, IrProgram, StmtId};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

impl Snapshot {
    /// Captures a completed recorded run (plus its lint findings) as a
    /// snapshot of the given program and configuration.
    pub fn build(
        ir: &IrProgram,
        config: &AnalysisConfig,
        run: &EngineRun,
        lint: &[Diagnostic],
    ) -> Snapshot {
        let result = &run.result;
        let functions = (0..ir.functions.len() as u32)
            .map(|f| FnRow {
                func: f,
                fp: fingerprint::function(ir, FuncId(f)),
                name: ir.functions[f as usize].name.clone(),
            })
            .collect();
        let locs = result
            .locs
            .ids()
            .map(|id| result.locs.get(id).clone())
            .collect();
        let nodes = result
            .ig
            .iter()
            .map(|(_, n)| NodeRow {
                func: n.func.0,
                parent: n.parent.map(|p| p.0),
                kind: n.kind,
                rec: n.rec_edge.map(|r| r.0),
                memo_valid: n.memo_valid,
                stored_input: n.stored_input.clone(),
                stored_output: n.stored_output.clone(),
                map_info: n.map_info.clone(),
                children: n
                    .children
                    .iter()
                    .map(|(&(cs, f), &id)| (cs.0, f.0, id.0))
                    .collect(),
            })
            .collect();
        let lint = lint
            .iter()
            .map(|d| LintRow {
                check_id: d.check_id.to_owned(),
                severity: d.severity,
                fidelity: d.fidelity,
                function: d.function.clone(),
                stmt: d.stmt.map(|s| s.0),
                span: (d.span.start, d.span.end, d.span.line, d.span.col),
                message: d.message.clone(),
            })
            .collect();
        Snapshot {
            skeleton: fingerprint::skeleton(ir),
            config: fingerprint::config(config),
            functions,
            syms: result.locs.symbolic_entries().to_vec(),
            locs,
            nodes,
            root: if result.ig.is_empty() {
                None
            } else {
                Some(result.ig.root().0)
            },
            captures: run.node_captures.clone(),
            per_stmt: result.per_stmt.clone(),
            exit_set: result.exit_set.clone(),
            warnings: result.warnings.clone(),
            escapes: result.escapes.clone(),
            lint: lint_sorted(lint),
        }
    }

    /// The lint findings as [`Diagnostic`]s (check ids resolved against
    /// the live registry; [`format::parse`] already validated them).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let checks = pta_lint::all_checks();
        self.lint
            .iter()
            .filter_map(|l| {
                let id = checks.iter().map(|c| c.id()).find(|id| *id == l.check_id)?;
                Some(Diagnostic {
                    check_id: id,
                    severity: l.severity,
                    fidelity: l.fidelity,
                    function: l.function.clone(),
                    stmt: l.stmt.map(StmtId),
                    span: pta_cfront::Span {
                        start: l.span.0,
                        end: l.span.1,
                        line: l.span.2,
                        col: l.span.3,
                    },
                    message: l.message.clone(),
                })
            })
            .collect()
    }
}

fn lint_sorted(mut rows: Vec<LintRow>) -> Vec<LintRow> {
    // `lint_ir` already emits deterministically, but the snapshot should
    // not depend on that: sort by position, then check, then message.
    rows.sort_by(|a, b| {
        (a.span, &a.function, &a.check_id, &a.message).cmp(&(
            b.span,
            &b.function,
            &b.check_id,
            &b.message,
        ))
    });
    rows
}

/// Writes a snapshot to `path` in the canonical text form,
/// **crash-safely**: the bytes go to a same-directory tempfile which is
/// written, fsynced, and atomically renamed over `path`, then the
/// directory itself is fsynced. A crash (or injected fault, see
/// [`fault`]) at any point leaves either the complete old snapshot or
/// the complete new one at `path` — never a torn file.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure. On error the target file
/// is untouched and the tempfile is removed (best effort).
pub fn save(path: &Path, snap: &Snapshot) -> Result<(), StoreError> {
    atomic_write(path, serialize(snap).as_bytes())
        .map_err(|e| StoreError::Io(format!("{}: {e}", path.display())))
}

/// The tempfile-then-rename write behind [`save`], with every I/O step
/// a numbered [`fault`] point.
fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_owned());
    // Same directory as the target: rename(2) is only atomic within a
    // filesystem. The pid keeps concurrent processes off each other's
    // tempfiles; within a process, saves of one path are serialized by
    // the tenant cache lock.
    let tmp = dir.join(format!(".{file_name}.tmp.{}", std::process::id()));
    let result = (|| {
        if fault::check(fault::SAVE_CREATE).is_some() {
            return Err(fault::injected_error(fault::SAVE_CREATE));
        }
        let mut f = std::fs::File::create(&tmp)?;
        match fault::check(fault::SAVE_WRITE) {
            Some(FaultMode::Truncate) => {
                // A torn write: half the payload reaches the tempfile,
                // then the "crash".
                f.write_all(&bytes[..bytes.len() / 2])?;
                return Err(fault::injected_error(fault::SAVE_WRITE));
            }
            Some(FaultMode::Fail) => return Err(fault::injected_error(fault::SAVE_WRITE)),
            None => {}
        }
        f.write_all(bytes)?;
        if fault::check(fault::SAVE_SYNC).is_some() {
            return Err(fault::injected_error(fault::SAVE_SYNC));
        }
        f.sync_all()?;
        drop(f);
        if fault::check(fault::SAVE_RENAME).is_some() {
            return Err(fault::injected_error(fault::SAVE_RENAME));
        }
        std::fs::rename(&tmp, path)?;
        if fault::check(fault::SAVE_DIRSYNC).is_some() {
            return Err(fault::injected_error(fault::SAVE_DIRSYNC));
        }
        // fsync the directory so the rename itself is durable; skipped
        // silently where directories cannot be opened for sync.
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads and parses a snapshot from `path`.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure, or any [`format::parse`]
/// error.
pub fn load(path: &Path) -> Result<Snapshot, StoreError> {
    let mut text = std::fs::read_to_string(path)
        .map_err(|e| StoreError::Io(format!("{}: {e}", path.display())))?;
    match fault::check(fault::LOAD_READ) {
        Some(FaultMode::Truncate) => {
            // A torn read: the checksum line sees half a payload and the
            // caller degrades to a cold run.
            text.truncate(text.len() / 2);
        }
        Some(FaultMode::Fail) => {
            return Err(StoreError::Io(format!(
                "{}: {}",
                path.display(),
                fault::injected_error(fault::LOAD_READ)
            )))
        }
        None => {}
    }
    parse(&text)
}

/// What [`verify`] found in a well-formed snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifySummary {
    /// Fingerprinted functions.
    pub functions: usize,
    /// Interned locations.
    pub locations: usize,
    /// Invocation-graph nodes.
    pub nodes: usize,
    /// Memoized context pairs (non-approximate, memo-valid nodes).
    pub pairs: usize,
    /// Persisted lint findings.
    pub lint: usize,
}

/// Deep-verifies snapshot text: checksum, structural parse, location
/// table replay, invocation-graph cross-reference validation, and
/// range checks on every persisted points-to set and capture.
///
/// # Errors
///
/// The first [`StoreError`] found.
pub fn verify(text: &str) -> Result<VerifySummary, StoreError> {
    let snap = parse(text)?;
    rebuild_locs(&snap)?;
    let ig = rebuild_ig(&snap)?;
    let n_locs = snap.locs.len();
    let corrupt = |msg: &str| StoreError::Corrupt {
        line: 0,
        msg: msg.to_owned(),
    };
    let check_set = |set: &PtSet| -> Result<(), StoreError> {
        for (a, b, _) in set.iter() {
            if a.0 as usize >= n_locs || b.0 as usize >= n_locs {
                return Err(corrupt("points-to set references an unknown location"));
            }
        }
        Ok(())
    };
    for set in snap.per_stmt.values() {
        check_set(set)?;
    }
    check_set(&snap.exit_set)?;
    let mut pairs = 0;
    for row in &snap.nodes {
        if let Some(s) = &row.stored_input {
            check_set(s)?;
        }
        if let Some(s) = &row.stored_output {
            check_set(s)?;
        }
        for (k, v) in &row.map_info {
            if k.0 as usize >= n_locs || v.iter().any(|l| l.0 as usize >= n_locs) {
                return Err(corrupt("map information references an unknown location"));
            }
        }
        if row.kind != IgKind::Approximate && row.memo_valid && row.stored_input.is_some() {
            pairs += 1;
        }
    }
    for (&node, cap) in &snap.captures {
        if node as usize >= snap.nodes.len() {
            return Err(corrupt("capture references an unknown node"));
        }
        for set in cap.per_stmt.values() {
            check_set(set)?;
        }
    }
    let _ = ig;
    Ok(VerifySummary {
        functions: snap.functions.len(),
        locations: n_locs,
        nodes: snap.nodes.len(),
        pairs,
        lint: snap.lint.len(),
    })
}

/// Replays the snapshot's location rows into a fresh table, restoring
/// the symbolic registry first so ids come out identical to save time.
///
/// # Errors
///
/// [`StoreError::Corrupt`] if rows are out of id order (duplicates) or
/// reference unknown symbolic entries.
pub fn rebuild_locs(snap: &Snapshot) -> Result<LocationTable, StoreError> {
    let corrupt = |msg: &str| StoreError::Corrupt {
        line: 0,
        msg: msg.to_owned(),
    };
    let mut table = LocationTable::new();
    for s in &snap.syms {
        table.restore_symbolic(s.func, &s.name, s.depth, s.ty.clone());
    }
    for (i, row) in snap.locs.iter().enumerate() {
        if let LocBase::Symbolic(_, idx) = row.base {
            if idx as usize >= snap.syms.len() {
                return Err(corrupt("location references an unknown symbolic entry"));
            }
        }
        let id = table.intern(
            row.base.clone(),
            row.projs.clone(),
            row.ty.clone(),
            row.name.clone(),
        );
        if id.0 as usize != i {
            return Err(corrupt("location rows are not in id order"));
        }
    }
    Ok(table)
}

/// Reassembles the invocation graph from the snapshot's node rows,
/// running the full cross-reference validation of
/// [`InvocationGraph::from_nodes`].
///
/// # Errors
///
/// [`StoreError::Corrupt`] on any inconsistency.
pub fn rebuild_ig(snap: &Snapshot) -> Result<InvocationGraph, StoreError> {
    let corrupt = |msg: String| StoreError::Corrupt { line: 0, msg };
    let mut nodes = Vec::with_capacity(snap.nodes.len());
    for row in &snap.nodes {
        let mut children = BTreeMap::new();
        for &(cs, f, id) in &row.children {
            children.insert((CallSiteId(cs), FuncId(f)), IgNodeId(id));
        }
        if children.len() != row.children.len() {
            return Err(corrupt("duplicate child call-site key".to_owned()));
        }
        nodes.push(IgNode {
            func: FuncId(row.func),
            parent: row.parent.map(IgNodeId),
            kind: row.kind,
            rec_edge: row.rec.map(IgNodeId),
            children,
            stored_input: row.stored_input.clone(),
            stored_output: row.stored_output.clone(),
            memo_valid: row.memo_valid,
            pending: Vec::new(),
            map_info: row.map_info.clone(),
        });
    }
    InvocationGraph::from_nodes(nodes, snap.root.map(IgNodeId)).map_err(corrupt)
}

/// Reconstitutes the saved run as a plain [`AnalysisResult`] — what the
/// serve engine queries without re-running any analysis.
///
/// # Errors
///
/// [`StoreError::Corrupt`] if locations or graph fail validation.
pub fn reload_result(snap: &Snapshot) -> Result<AnalysisResult, StoreError> {
    Ok(AnalysisResult {
        locs: rebuild_locs(snap)?,
        ig: rebuild_ig(snap)?,
        per_stmt: snap.per_stmt.clone(),
        exit_set: snap.exit_set.clone(),
        warnings: snap.warnings.clone(),
        escapes: snap.escapes.clone(),
        prune: Default::default(),
    })
}

/// What [`warm_start`] decided about a usable snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmInfo {
    /// Names of functions whose fingerprint changed (re-analysed cold).
    pub dirty: Vec<String>,
    /// Number of context pairs harvested as warm seeds.
    pub pairs: usize,
}

/// Validates a snapshot against a (possibly edited) program and
/// harvests warm seeds: the preloaded location table (refreshed for
/// dirty functions) plus every memoized context pair whose entire
/// invocation subtree is clean.
///
/// # Errors
///
/// [`StoreError::Skeleton`] / [`StoreError::Config`] when the program
/// shape or configuration changed (dense ids would be meaningless), or
/// [`StoreError::Corrupt`] for internal inconsistencies.
pub fn warm_start(
    ir: &IrProgram,
    config: &AnalysisConfig,
    snap: &Snapshot,
) -> Result<(WarmStart, WarmInfo), StoreError> {
    if snap.skeleton != fingerprint::skeleton(ir) {
        return Err(StoreError::Skeleton);
    }
    if snap.config != fingerprint::config(config) {
        return Err(StoreError::Config);
    }
    if snap.functions.len() != ir.functions.len() {
        return Err(StoreError::Corrupt {
            line: 0,
            msg: "function rows do not cover the program".to_owned(),
        });
    }
    let mut dirty: BTreeSet<FuncId> = BTreeSet::new();
    for row in &snap.functions {
        if row.func as usize >= ir.functions.len() {
            return Err(StoreError::Corrupt {
                line: 0,
                msg: "function row out of range".to_owned(),
            });
        }
        if fingerprint::function(ir, FuncId(row.func)) != row.fp {
            dirty.insert(FuncId(row.func));
        }
    }
    let mut locs = rebuild_locs(snap)?;
    locs.refresh_for(ir, &dirty);
    let ig = rebuild_ig(snap)?;
    for &node in snap.captures.keys() {
        if node as usize >= snap.nodes.len() {
            return Err(StoreError::Corrupt {
                line: 0,
                msg: "capture references an unknown node".to_owned(),
            });
        }
    }
    let mut seeds = WarmSeeds::default();
    let mut pairs = 0;
    for (id, node) in ig.iter() {
        if node.kind == IgKind::Approximate || !node.memo_valid {
            continue;
        }
        let Some(input) = &node.stored_input else {
            continue;
        };
        let Some(cap) = snap.captures.get(&id.0) else {
            continue;
        };
        if !cap.complete {
            continue;
        }
        let Some(fragment) = ig.extract_fragment(id) else {
            continue;
        };
        if fragment.functions().iter().any(|f| dirty.contains(f)) {
            continue;
        }
        if seeds.insert(
            node.func,
            WarmPair {
                input: input.clone(),
                output: node.stored_output.clone(),
                capture: cap.clone(),
                fragment,
            },
        ) {
            pairs += 1;
        }
    }
    let dirty_names = dirty.iter().map(|f| ir.function(*f).name.clone()).collect();
    Ok((
        WarmStart { locs, seeds },
        WarmInfo {
            dirty: dirty_names,
            pairs,
        },
    ))
}

/// Why an incremental run fell back to a cold analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColdReason {
    /// No snapshot was offered.
    NoSnapshot,
    /// The snapshot was unusable (corrupt, foreign version, changed
    /// skeleton or configuration, …).
    Store(StoreError),
}

/// How an incremental run actually executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarmMode {
    /// Seeded from a snapshot.
    Warm {
        /// Memo hits served from warm seeds.
        seed_hits: usize,
        /// Dirty (re-analysed) function names.
        dirty: Vec<String>,
        /// Pairs harvested from the snapshot.
        pairs: usize,
    },
    /// Full cold analysis.
    Cold(ColdReason),
}

/// An incremental analysis run: the engine output plus how it ran.
#[derive(Debug)]
pub struct IncrementalRun {
    /// The (capturing) engine run — ready to be snapshotted again.
    pub run: EngineRun,
    /// Warm or cold, and why.
    pub mode: WarmMode,
}

/// Analyses `ir`, warmed from `snap` when possible. Every store-level
/// problem — no snapshot, corruption, foreign version, changed skeleton
/// or configuration — degrades to a cold recorded run; the analysis
/// itself is the only thing that can fail.
///
/// The correctness contract (pinned by the tier-1 tests): the result is
/// byte-identical, at the fact level ([`canonical_facts`]), to a cold
/// run of the same program under the same configuration.
///
/// # Errors
///
/// Only [`AnalysisError`] — never a [`StoreError`].
pub fn analyze_incremental(
    ir: &IrProgram,
    config: &AnalysisConfig,
    snap: Option<&Snapshot>,
) -> Result<IncrementalRun, AnalysisError> {
    let cold = |reason: ColdReason| -> Result<IncrementalRun, AnalysisError> {
        Ok(IncrementalRun {
            run: analyze_recorded(ir, config.clone())?,
            mode: WarmMode::Cold(reason),
        })
    };
    let Some(snap) = snap else {
        return cold(ColdReason::NoSnapshot);
    };
    match warm_start(ir, config, snap) {
        Ok((warm, info)) => {
            let run = analyze_seeded(ir, config.clone(), warm, true)?;
            let seed_hits = run.seed_hits;
            Ok(IncrementalRun {
                run,
                mode: WarmMode::Warm {
                    seed_hits,
                    dirty: info.dirty,
                    pairs: info.pairs,
                },
            })
        }
        Err(e) => cold(ColdReason::Store(e)),
    }
}

fn qualified_name(ir: &IrProgram, result: &AnalysisResult, id: LocId) -> String {
    let scope = match result.locs.get(id).base {
        LocBase::Var(f, _) | LocBase::Symbolic(f, _) | LocBase::Ret(f) => {
            Some(&ir.function(f).name)
        }
        _ => None,
    };
    match scope {
        Some(f) => format!("{f}::{}", result.locs.name(id)),
        None => result.locs.name(id).to_owned(),
    }
}

fn render_set(ir: &IrProgram, result: &AnalysisResult, set: &PtSet) -> Vec<String> {
    let mut lines: Vec<String> = set
        .iter()
        .map(|(a, b, d)| {
            format!(
                "{} -> {} {}",
                qualified_name(ir, result, a),
                qualified_name(ir, result, b),
                match d {
                    Def::D => "D",
                    Def::P => "P",
                }
            )
        })
        .collect();
    lines.sort();
    lines.dedup();
    lines
}

/// Renders an analysis result at the *name* level (function-qualified
/// location names, no ids), deterministically. Two runs of the same
/// program — one cold, one incrementally warmed from a snapshot of an
/// *earlier* version — must render byte-identically; this is the
/// comparator behind the incremental-correctness tests and the CI
/// round-trip diff.
pub fn canonical_facts(ir: &IrProgram, result: &AnalysisResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (stmt, set) in &result.per_stmt {
        for line in render_set(ir, result, set) {
            let _ = writeln!(out, "s{} {}", stmt.0, line);
        }
    }
    for line in render_set(ir, result, &result.exit_set) {
        let _ = writeln!(out, "exit {line}");
    }
    for w in &result.warnings {
        let _ = writeln!(out, "warn {w}");
    }
    for e in &result.escapes {
        let _ = writeln!(
            out,
            "escape {} s{} {:?} {:?} {}",
            ir.function(e.callee).name,
            e.call_site.0,
            e.via,
            e.def,
            e.local
        );
    }
    let s = result.ig.stats();
    let _ = writeln!(
        out,
        "ig nodes={} recursive={} approximate={} functions={}",
        s.nodes, s.recursive, s.approximate, s.functions
    );
    out
}

/// Inserts a semantically inert statement (`if (0) { }`) in front of
/// the last `return` of the source, changing exactly one function's
/// body fingerprint. Returns `None` when the source has no `return`.
/// Test helper for the mutate-one-function incrementality properties.
pub fn perturb_source(source: &str) -> Option<String> {
    let at = source.rfind("return")?;
    let mut out = String::with_capacity(source.len() + 12);
    out.push_str(&source[..at]);
    out.push_str("if (0) { } ");
    out.push_str(&source[at..]);
    Some(out)
}
