//! A minimal JSON layer for the serving stack.
//!
//! The build environment is offline (no serde), so the wire protocol,
//! the load-generator artifact, and the bench report all share this
//! hand-rolled parser/renderer. It covers the whole JSON grammar —
//! objects, arrays, strings, numbers, booleans, null — which is what
//! lets the protocol accept *batch* request lines (a JSON array of
//! request objects) next to plain flat objects.
//!
//! Rendering is deterministic: objects render in insertion order and
//! integral numbers render without a fractional part, so a value that
//! round-trips through [`parse`] and [`Json::render`] is byte-stable.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (keys are not deduplicated; lookups
    /// find the first occurrence).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first occurrence), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u32`, when it is a non-negative integer in
    /// range.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `Json::Obj`.
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }

    /// Renders the value back to compact JSON (insertion-ordered keys,
    /// integral numbers without a fraction).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// A human-readable message with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let b = text.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    let v = parse_value(b, &mut i, 0)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(err("trailing bytes after value", i));
    }
    Ok(v)
}

/// Nesting depth cap: the protocol is flat-plus-batches, so anything
/// deeper than this is garbage (and a stack-overflow guard besides).
const MAX_DEPTH: usize = 32;

fn err(msg: &str, at: usize) -> String {
    format!("{msg} at byte {at}")
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(err("value nested too deeply", *i));
    }
    match b.get(*i) {
        Some(b'{') => parse_obj(b, i, depth),
        Some(b'[') => parse_arr(b, i, depth),
        Some(b'"') => Ok(Json::Str(parse_string(b, i)?)),
        Some(b't') if b[*i..].starts_with(b"true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*i..].starts_with(b"false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*i..].starts_with(b"null") => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, i),
        _ => Err(err("expected a value", *i)),
    }
}

fn parse_obj(b: &[u8], i: &mut usize, depth: usize) -> Result<Json, String> {
    *i += 1; // consume `{`
    let mut fields = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, i);
        let key = parse_string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(err("expected `:`", *i));
        }
        *i += 1;
        skip_ws(b, i);
        let val = parse_value(b, i, depth + 1)?;
        fields.push((key, val));
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err("expected `,` or `}`", *i)),
        }
    }
}

fn parse_arr(b: &[u8], i: &mut usize, depth: usize) -> Result<Json, String> {
    *i += 1; // consume `[`
    let mut items = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(b, i);
        items.push(parse_value(b, i, depth + 1)?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected `,` or `]`", *i)),
        }
    }
}

fn parse_num(b: &[u8], i: &mut usize) -> Result<Json, String> {
    let start = *i;
    while *i < b.len()
        && (b[*i].is_ascii_digit()
            || b[*i] == b'-'
            || b[*i] == b'+'
            || b[*i] == b'.'
            || b[*i] == b'e'
            || b[*i] == b'E')
    {
        *i += 1;
    }
    std::str::from_utf8(&b[start..*i])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Num)
        .ok_or_else(|| err("bad number", start))
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(err("expected string", *i));
    }
    *i += 1;
    let mut s = String::new();
    loop {
        match b.get(*i) {
            None => return Err(err("unterminated string", *i)),
            Some(b'"') => {
                *i += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err("bad \\u escape", *i))?;
                        let v =
                            u32::from_str_radix(hex, 16).map_err(|_| err("bad \\u escape", *i))?;
                        s.push(char::from_u32(v).ok_or_else(|| err("bad \\u escape", *i))?);
                        *i += 4;
                    }
                    _ => return Err(err("bad escape", *i)),
                }
                *i += 1;
            }
            Some(&c) => {
                // Collect the full UTF-8 sequence.
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*i..*i + ch_len)
                    .and_then(|ch| std::str::from_utf8(ch).ok())
                    .ok_or_else(|| err("bad UTF-8", *i))?;
                s.push_str(chunk);
                *i += ch_len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "42", "-7", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.render(), text, "{text}");
        }
    }

    #[test]
    fn objects_and_arrays_round_trip_in_order() {
        let text = r#"{"b":1,"a":[{"x":null},true,"s"],"c":{"d":2.5}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("b").unwrap().as_u32(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(v.render(), r#""a\"b\\c\ndA""#);
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}"] {
            let e = parse(bad).unwrap_err();
            assert!(e.contains("at byte"), "{bad}: {e}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let e = parse(&deep).unwrap_err();
        assert!(e.contains("too deeply"), "{e}");
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integral_floats_render_as_integers() {
        assert_eq!(parse("2.0").unwrap().render(), "2");
        assert_eq!(parse("1e3").unwrap().render(), "1000");
    }
}
