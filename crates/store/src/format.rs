//! The on-disk snapshot format: a versioned, line-oriented,
//! deterministic text encoding with an FNV-1a payload checksum.
//!
//! Layout (`\n`-separated lines, space-separated tokens):
//!
//! ```text
//! pta-store pta.v1          header: magic + schema version
//! checksum <16 hex>         FNV-1a over every byte after this line
//! skeleton <16 hex>         program-skeleton fingerprint
//! config <16 hex>           analysis-configuration digest
//! funcs <n>                 then n  `fn <id> <fp> <name>` lines
//! syms <n>                  then n  `sym <func> <depth> <name> <ty>` lines
//! locs <n>                  then n  `loc <base> <projs> <ty> <name>` lines
//! ig <n> <root>             then n  `node …` + `mi …` + `ch …` line triples
//! caps <n>                  then n  `cap …` groups (cp/cw/ce lines)
//! result                    rs/rp, exit, warns/w, escs/e lines
//! lint <n>                  then n  `l …` lines
//! end
//! ```
//!
//! Strings are percent-encoded (every byte `<= 0x20`, `%`, and
//! `>= 0x7f`; a lone `%` is the empty string), so tokens never contain
//! whitespace and the encoding is byte-deterministic. Types use a
//! self-delimiting prefix code. Points-to sets are `src,tgt,D|P`
//! triples joined by `;` (or `0` when empty; `!` is the absent flow ⊥).
//!
//! Every parse failure is a typed [`StoreError`] — the orchestration
//! layer degrades to a cold run on any of them, never a panic.

use pta_cfront::ast::{FuncId, GlobalId};
use pta_cfront::types::{FuncSig, StructId, Type};
use pta_core::analysis::{Capture, EscapeEvent, EscapeVia};
use pta_core::fingerprint::{fnv1a, SCHEMA_VERSION};
use pta_core::invocation_graph::{IgKind, MapInfo};
use pta_core::location::{LocBase, LocData, LocId, Proj, SymbolicData};
use pta_core::points_to_set::{Def, Flow, PtSet};
use pta_core::Fidelity;
use pta_lint::Severity;
use pta_simple::{CallSiteId, IrVarId, StmtId};
use std::collections::BTreeMap;
use std::fmt;

/// The magic token opening every snapshot.
pub const MAGIC: &str = "pta-store";

/// Why a snapshot could not be used. Every variant degrades to a cold
/// run at the orchestration layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem-level failure (missing file, unreadable, …).
    Io(String),
    /// The header is not `pta-store` + the current schema version.
    Version {
        /// The header line actually found.
        found: String,
    },
    /// The payload checksum does not match its content.
    Checksum,
    /// A structural parse failure.
    Corrupt {
        /// 1-based line of the failure.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// The snapshot was taken from a program with a different skeleton
    /// (globals/structs/signatures), so its dense ids are meaningless.
    Skeleton,
    /// The snapshot was taken under a different analysis configuration.
    Config,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store I/O error: {m}"),
            StoreError::Version { found } => {
                write!(
                    f,
                    "unsupported snapshot header `{found}` (want `{MAGIC} {SCHEMA_VERSION}`)"
                )
            }
            StoreError::Checksum => write!(f, "snapshot payload checksum mismatch"),
            StoreError::Corrupt { line, msg } => {
                write!(f, "corrupt snapshot at line {line}: {msg}")
            }
            StoreError::Skeleton => {
                write!(f, "snapshot is for a program with a different skeleton")
            }
            StoreError::Config => write!(f, "snapshot was taken under a different configuration"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One function's identity row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnRow {
    /// Dense function id (valid because the skeleton matched).
    pub func: u32,
    /// Source fingerprint at save time.
    pub fp: u64,
    /// Name (diagnostics only; ids are authoritative).
    pub name: String,
}

/// One invocation-graph node, in absolute (snapshot-wide) ids.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRow {
    /// Invoked function.
    pub func: u32,
    /// Parent node (`None` for the root).
    pub parent: Option<u32>,
    /// Node kind.
    pub kind: IgKind,
    /// Approximate nodes: the matching recursive node.
    pub rec: Option<u32>,
    /// Memo validity.
    pub memo_valid: bool,
    /// Memoized input.
    pub stored_input: Option<PtSet>,
    /// Memoized output.
    pub stored_output: Flow,
    /// Per-context map information.
    pub map_info: MapInfo,
    /// Children as `(call site, callee func, node id)`.
    pub children: Vec<(u32, u32, u32)>,
}

/// One persisted lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct LintRow {
    /// Stable check id (validated against the registry at parse time).
    pub check_id: String,
    /// Finding severity.
    pub severity: Severity,
    /// Fidelity of the producing engine.
    pub fidelity: Fidelity,
    /// Enclosing function name.
    pub function: String,
    /// Program point, if statement-tied.
    pub stmt: Option<u32>,
    /// Source span as `(start, end, line, col)`.
    pub span: (usize, usize, u32, u32),
    /// Message text.
    pub message: String,
}

/// A parsed snapshot: everything a warm start or a serve engine needs,
/// in program-independent form (dense ids are validated against the
/// skeleton fingerprint before use).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Skeleton fingerprint of the source program.
    pub skeleton: u64,
    /// Digest of the analysis configuration.
    pub config: u64,
    /// Per-function fingerprints.
    pub functions: Vec<FnRow>,
    /// Symbolic-name registry in creation order.
    pub syms: Vec<SymbolicData>,
    /// Location rows in id order.
    pub locs: Vec<LocData>,
    /// Invocation-graph nodes in id order.
    pub nodes: Vec<NodeRow>,
    /// Root node id.
    pub root: Option<u32>,
    /// Captured side outputs per node id.
    pub captures: BTreeMap<u32, Capture>,
    /// Final merged per-statement facts.
    pub per_stmt: BTreeMap<StmtId, PtSet>,
    /// Final exit set of `main`.
    pub exit_set: PtSet,
    /// Final warnings, in emission order.
    pub warnings: Vec<String>,
    /// Final escape events, in emission order.
    pub escapes: Vec<EscapeEvent>,
    /// Lint findings of the saved run.
    pub lint: Vec<LintRow>,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            skeleton: 0,
            config: 0,
            functions: Vec::new(),
            syms: Vec::new(),
            locs: Vec::new(),
            nodes: Vec::new(),
            root: None,
            captures: BTreeMap::new(),
            per_stmt: BTreeMap::new(),
            exit_set: PtSet::new(),
            warnings: Vec::new(),
            escapes: Vec::new(),
            lint: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------
// String encoding
// ---------------------------------------------------------------------

/// Percent-encodes a string into a single whitespace-free token. The
/// empty string becomes a lone `%`.
pub fn enc_str(s: &str) -> String {
    if s.is_empty() {
        return "%".to_owned();
    }
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        if b <= 0x20 || b == b'%' || b >= 0x7f {
            out.push('%');
            out.push_str(&format!("{b:02x}"));
        } else {
            out.push(b as char);
        }
    }
    out
}

/// Decodes [`enc_str`].
pub fn dec_str(tok: &str) -> Result<String, String> {
    if tok == "%" {
        return Ok(String::new());
    }
    let bytes = tok.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| "truncated percent escape".to_owned())?;
            let hex = std::str::from_utf8(hex).map_err(|_| "bad percent escape".to_owned())?;
            let v = u8::from_str_radix(hex, 16).map_err(|_| "bad percent escape".to_owned())?;
            out.push(v);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| "escaped string is not UTF-8".to_owned())
}

// ---------------------------------------------------------------------
// Type encoding (self-delimiting prefix code)
// ---------------------------------------------------------------------

fn enc_ty_into(t: &Type, out: &mut String) {
    match t {
        Type::Void => out.push('v'),
        Type::Int => out.push('i'),
        Type::Char => out.push('c'),
        Type::Double => out.push('d'),
        Type::Pointer(inner) => {
            out.push('p');
            enc_ty_into(inner, out);
        }
        Type::Array(elem, n) => {
            out.push('A');
            match n {
                Some(n) => out.push_str(&n.to_string()),
                None => out.push('?'),
            }
            out.push(';');
            enc_ty_into(elem, out);
        }
        Type::Struct(sid) => {
            out.push('s');
            out.push_str(&sid.0.to_string());
            out.push(';');
        }
        Type::Func(sig) => {
            out.push('f');
            out.push_str(&sig.params.len().to_string());
            out.push(';');
            for p in &sig.params {
                enc_ty_into(p, out);
            }
            out.push(if sig.variadic { 'V' } else { '.' });
            enc_ty_into(&sig.ret, out);
        }
    }
}

/// Encodes a type as a whitespace-free token.
pub fn enc_ty(t: &Type) -> String {
    let mut s = String::new();
    enc_ty_into(t, &mut s);
    s
}

/// Encodes an optional type (`-` is `None`).
pub fn enc_opt_ty(t: &Option<Type>) -> String {
    match t {
        Some(t) => enc_ty(t),
        None => "-".to_owned(),
    }
}

struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl Cur<'_> {
    fn next(&mut self) -> Result<u8, String> {
        let c = *self.b.get(self.i).ok_or("truncated type")?;
        self.i += 1;
        Ok(c)
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if self.i == start {
            return Err("expected a number in type".to_owned());
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "bad number in type".to_owned())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.next()? != c {
            return Err(format!("expected `{}` in type", c as char));
        }
        Ok(())
    }
}

fn dec_ty_cur(c: &mut Cur) -> Result<Type, String> {
    match c.next()? {
        b'v' => Ok(Type::Void),
        b'i' => Ok(Type::Int),
        b'c' => Ok(Type::Char),
        b'd' => Ok(Type::Double),
        b'p' => Ok(Type::Pointer(Box::new(dec_ty_cur(c)?))),
        b'A' => {
            let n = if c.b.get(c.i) == Some(&b'?') {
                c.i += 1;
                None
            } else {
                Some(c.number()?)
            };
            c.expect(b';')?;
            Ok(Type::Array(Box::new(dec_ty_cur(c)?), n))
        }
        b's' => {
            let id = c.number()? as u32;
            c.expect(b';')?;
            Ok(Type::Struct(StructId(id)))
        }
        b'f' => {
            let k = c.number()? as usize;
            c.expect(b';')?;
            if k > 4096 {
                return Err("implausible parameter count in type".to_owned());
            }
            let mut params = Vec::with_capacity(k);
            for _ in 0..k {
                params.push(dec_ty_cur(c)?);
            }
            let variadic = match c.next()? {
                b'V' => true,
                b'.' => false,
                _ => return Err("bad variadic marker in type".to_owned()),
            };
            let ret = dec_ty_cur(c)?;
            Ok(Type::Func(Box::new(FuncSig {
                ret,
                params,
                variadic,
            })))
        }
        other => Err(format!("unknown type tag `{}`", other as char)),
    }
}

/// Decodes [`enc_ty`].
pub fn dec_ty(tok: &str) -> Result<Type, String> {
    let mut c = Cur {
        b: tok.as_bytes(),
        i: 0,
    };
    let t = dec_ty_cur(&mut c)?;
    if c.i != c.b.len() {
        return Err("trailing bytes after type".to_owned());
    }
    Ok(t)
}

/// Decodes [`enc_opt_ty`].
pub fn dec_opt_ty(tok: &str) -> Result<Option<Type>, String> {
    if tok == "-" {
        return Ok(None);
    }
    dec_ty(tok).map(Some)
}

// ---------------------------------------------------------------------
// Points-to sets, locations
// ---------------------------------------------------------------------

fn def_tag(d: Def) -> &'static str {
    match d {
        Def::D => "D",
        Def::P => "P",
    }
}

fn dec_def(s: &str) -> Result<Def, String> {
    match s {
        "D" => Ok(Def::D),
        "P" => Ok(Def::P),
        _ => Err(format!("bad definiteness `{s}`")),
    }
}

/// Encodes a points-to set (`0` when empty).
pub fn enc_ptset(s: &PtSet) -> String {
    if s.is_empty() {
        return "0".to_owned();
    }
    let mut out = String::new();
    for (i, (a, b, d)) in s.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        out.push_str(&format!("{},{},{}", a.0, b.0, def_tag(d)));
    }
    out
}

/// Decodes [`enc_ptset`].
pub fn dec_ptset(tok: &str) -> Result<PtSet, String> {
    let mut set = PtSet::new();
    if tok == "0" {
        return Ok(set);
    }
    for t in tok.split(';') {
        let mut it = t.split(',');
        let a: u32 = it
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or("bad points-to triple")?;
        let b: u32 = it
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or("bad points-to triple")?;
        let d = dec_def(it.next().ok_or("bad points-to triple")?)?;
        if it.next().is_some() {
            return Err("bad points-to triple".to_owned());
        }
        set.insert(LocId(a), LocId(b), d);
    }
    Ok(set)
}

/// Encodes a flow value (`!` is ⊥).
pub fn enc_flow(f: &Flow) -> String {
    match f {
        None => "!".to_owned(),
        Some(s) => enc_ptset(s),
    }
}

/// Decodes [`enc_flow`].
pub fn dec_flow(tok: &str) -> Result<Flow, String> {
    if tok == "!" {
        return Ok(None);
    }
    dec_ptset(tok).map(Some)
}

fn enc_base(b: &LocBase) -> String {
    match b {
        LocBase::Global(g) => format!("g{}", g.0),
        LocBase::Var(f, v) => format!("V{}.{}", f.0, v.0),
        LocBase::Symbolic(f, i) => format!("y{}.{}", f.0, i),
        LocBase::Heap => "h".to_owned(),
        LocBase::HeapSite(s) => format!("H{s}"),
        LocBase::Null => "n".to_owned(),
        LocBase::StrLit => "S".to_owned(),
        LocBase::Function(f) => format!("F{}", f.0),
        LocBase::Ret(f) => format!("r{}", f.0),
    }
}

fn dec_base(tok: &str) -> Result<LocBase, String> {
    let pair = |rest: &str| -> Result<(u32, u32), String> {
        let (a, b) = rest.split_once('.').ok_or("bad location base")?;
        Ok((
            a.parse().map_err(|_| "bad location base")?,
            b.parse().map_err(|_| "bad location base")?,
        ))
    };
    let num = |rest: &str| -> Result<u32, String> {
        rest.parse().map_err(|_| "bad location base".to_owned())
    };
    match tok.split_at(1) {
        ("g", rest) => Ok(LocBase::Global(GlobalId(num(rest)?))),
        ("V", rest) => {
            let (f, v) = pair(rest)?;
            Ok(LocBase::Var(FuncId(f), IrVarId(v)))
        }
        ("y", rest) => {
            let (f, i) = pair(rest)?;
            Ok(LocBase::Symbolic(FuncId(f), i))
        }
        ("h", "") => Ok(LocBase::Heap),
        ("H", rest) => Ok(LocBase::HeapSite(num(rest)?)),
        ("n", "") => Ok(LocBase::Null),
        ("S", "") => Ok(LocBase::StrLit),
        ("F", rest) => Ok(LocBase::Function(FuncId(num(rest)?))),
        ("r", rest) => Ok(LocBase::Ret(FuncId(num(rest)?))),
        _ => Err(format!("unknown location base `{tok}`")),
    }
}

fn enc_projs(ps: &[Proj]) -> String {
    if ps.is_empty() {
        return "-".to_owned();
    }
    let mut out = String::new();
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            out.push('/');
        }
        match p {
            Proj::Field(f) => {
                out.push('f');
                out.push_str(&enc_str(f));
            }
            Proj::Head => out.push('h'),
            Proj::Tail => out.push('t'),
        }
    }
    out
}

fn dec_projs(tok: &str) -> Result<Vec<Proj>, String> {
    if tok == "-" {
        return Ok(Vec::new());
    }
    tok.split('/')
        .map(|p| match p.split_at(1) {
            ("f", rest) => Ok(Proj::Field(dec_str(rest)?)),
            ("h", "") => Ok(Proj::Head),
            ("t", "") => Ok(Proj::Tail),
            _ => Err(format!("unknown projection `{p}`")),
        })
        .collect()
}

fn enc_opt_u32(v: Option<u32>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "-".to_owned(),
    }
}

fn dec_opt_u32(tok: &str) -> Result<Option<u32>, String> {
    if tok == "-" {
        return Ok(None);
    }
    tok.parse().map(Some).map_err(|_| "bad number".to_owned())
}

fn kind_tag(k: IgKind) -> &'static str {
    match k {
        IgKind::Ordinary => "o",
        IgKind::Recursive => "r",
        IgKind::Approximate => "a",
    }
}

fn dec_kind(tok: &str) -> Result<IgKind, String> {
    match tok {
        "o" => Ok(IgKind::Ordinary),
        "r" => Ok(IgKind::Recursive),
        "a" => Ok(IgKind::Approximate),
        _ => Err(format!("bad node kind `{tok}`")),
    }
}

fn via_tag(v: EscapeVia) -> &'static str {
    match v {
        EscapeVia::Unmap => "u",
        EscapeVia::Return => "r",
    }
}

fn dec_via(tok: &str) -> Result<EscapeVia, String> {
    match tok {
        "u" => Ok(EscapeVia::Unmap),
        "r" => Ok(EscapeVia::Return),
        _ => Err(format!("bad escape kind `{tok}`")),
    }
}

fn enc_escape(e: &EscapeEvent) -> String {
    format!(
        "{} {} {} {} {}",
        e.callee.0,
        e.call_site.0,
        via_tag(e.via),
        def_tag(e.def),
        enc_str(&e.local)
    )
}

fn dec_severity(tok: &str) -> Result<Severity, String> {
    match tok {
        "warning" => Ok(Severity::Warning),
        "error" => Ok(Severity::Error),
        _ => Err(format!("bad severity `{tok}`")),
    }
}

fn dec_fidelity(tok: &str) -> Result<Fidelity, String> {
    for f in [
        Fidelity::ContextSensitive,
        Fidelity::ContextInsensitive,
        Fidelity::Andersen,
        Fidelity::Steensgaard,
    ] {
        if f.tag() == tok {
            return Ok(f);
        }
    }
    Err(format!("bad fidelity `{tok}`"))
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

/// Renders a snapshot as its canonical text form (header, checksum,
/// payload). Serializing the same snapshot always yields the same
/// bytes.
pub fn serialize(snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut p = String::new();
    let _ = writeln!(p, "skeleton {:016x}", snap.skeleton);
    let _ = writeln!(p, "config {:016x}", snap.config);
    let _ = writeln!(p, "funcs {}", snap.functions.len());
    for f in &snap.functions {
        let _ = writeln!(p, "fn {} {:016x} {}", f.func, f.fp, enc_str(&f.name));
    }
    let _ = writeln!(p, "syms {}", snap.syms.len());
    for s in &snap.syms {
        let _ = writeln!(
            p,
            "sym {} {} {} {}",
            s.func.0,
            s.depth,
            enc_str(&s.name),
            enc_opt_ty(&s.ty)
        );
    }
    let _ = writeln!(p, "locs {}", snap.locs.len());
    for l in &snap.locs {
        let _ = writeln!(
            p,
            "loc {} {} {} {}",
            enc_base(&l.base),
            enc_projs(&l.projs),
            enc_opt_ty(&l.ty),
            enc_str(&l.name)
        );
    }
    let _ = writeln!(p, "ig {} {}", snap.nodes.len(), enc_opt_u32(snap.root));
    for n in &snap.nodes {
        let _ = writeln!(
            p,
            "node {} {} {} {} {} {} {}",
            n.func,
            enc_opt_u32(n.parent),
            kind_tag(n.kind),
            enc_opt_u32(n.rec),
            u8::from(n.memo_valid),
            match &n.stored_input {
                Some(s) => enc_ptset(s),
                None => "!".to_owned(),
            },
            enc_flow(&n.stored_output)
        );
        let mut mi = format!("mi {}", n.map_info.len());
        for (k, v) in &n.map_info {
            let reps: Vec<String> = v.iter().map(|l| l.0.to_string()).collect();
            let _ = write!(mi, " {}={}", k.0, reps.join(","));
        }
        p.push_str(&mi);
        p.push('\n');
        let mut ch = format!("ch {}", n.children.len());
        for (cs, f, id) in &n.children {
            let _ = write!(ch, " {cs},{f},{id}");
        }
        p.push_str(&ch);
        p.push('\n');
    }
    let _ = writeln!(p, "caps {}", snap.captures.len());
    for (node, cap) in &snap.captures {
        let _ = writeln!(
            p,
            "cap {} {} {} {} {}",
            node,
            u8::from(cap.complete),
            cap.per_stmt.len(),
            cap.warnings.len(),
            cap.escapes.len()
        );
        for (id, set) in &cap.per_stmt {
            let _ = writeln!(p, "cp {} {}", id.0, enc_ptset(set));
        }
        for w in &cap.warnings {
            let _ = writeln!(p, "cw {}", enc_str(w));
        }
        for e in &cap.escapes {
            let _ = writeln!(p, "ce {}", enc_escape(e));
        }
    }
    let _ = writeln!(p, "result");
    let _ = writeln!(p, "rs {}", snap.per_stmt.len());
    for (id, set) in &snap.per_stmt {
        let _ = writeln!(p, "rp {} {}", id.0, enc_ptset(set));
    }
    let _ = writeln!(p, "exit {}", enc_ptset(&snap.exit_set));
    let _ = writeln!(p, "warns {}", snap.warnings.len());
    for w in &snap.warnings {
        let _ = writeln!(p, "w {}", enc_str(w));
    }
    let _ = writeln!(p, "escs {}", snap.escapes.len());
    for e in &snap.escapes {
        let _ = writeln!(p, "e {}", enc_escape(e));
    }
    let _ = writeln!(p, "lint {}", snap.lint.len());
    for l in &snap.lint {
        let _ = writeln!(
            p,
            "l {} {} {} {} {} {} {} {} {} {}",
            enc_str(&l.check_id),
            l.severity.tag(),
            l.fidelity.tag(),
            enc_opt_u32(l.stmt),
            l.span.0,
            l.span.1,
            l.span.2,
            l.span.3,
            enc_str(&l.function),
            enc_str(&l.message)
        );
    }
    let _ = writeln!(p, "end");

    let mut out = String::with_capacity(p.len() + 64);
    let _ = writeln!(out, "{MAGIC} {SCHEMA_VERSION}");
    let _ = writeln!(out, "checksum {:016x}", fnv1a(p.as_bytes()));
    out.push_str(&p);
    out
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, StoreError> {
        Err(StoreError::Corrupt {
            line: self.line_no,
            msg: msg.into(),
        })
    }

    /// Next line split into tokens; the first token must equal `tag`.
    fn line(&mut self, tag: &str) -> Result<Vec<&'a str>, StoreError> {
        let Some(l) = self.lines.next() else {
            return Err(StoreError::Corrupt {
                line: self.line_no + 1,
                msg: format!("unexpected end of snapshot (wanted `{tag}`)"),
            });
        };
        self.line_no += 1;
        let toks: Vec<&str> = l.split(' ').collect();
        if toks.first() != Some(&tag) {
            return self.err(format!(
                "expected a `{tag}` line, found `{}`",
                toks.first().unwrap_or(&"")
            ));
        }
        Ok(toks)
    }

    fn count(&self, toks: &[&str], at: usize) -> Result<usize, StoreError> {
        toks.get(at)
            .and_then(|t| t.parse().ok())
            .ok_or(StoreError::Corrupt {
                line: self.line_no,
                msg: "bad count".to_owned(),
            })
    }

    fn tok<'b>(&self, toks: &[&'b str], at: usize) -> Result<&'b str, StoreError> {
        toks.get(at).copied().ok_or(StoreError::Corrupt {
            line: self.line_no,
            msg: "missing token".to_owned(),
        })
    }

    fn u32_at(&self, toks: &[&str], at: usize) -> Result<u32, StoreError> {
        self.tok(toks, at)?
            .parse()
            .map_err(|_| StoreError::Corrupt {
                line: self.line_no,
                msg: "bad number".to_owned(),
            })
    }

    fn hex_at(&self, toks: &[&str], at: usize) -> Result<u64, StoreError> {
        u64::from_str_radix(self.tok(toks, at)?, 16).map_err(|_| StoreError::Corrupt {
            line: self.line_no,
            msg: "bad hex value".to_owned(),
        })
    }

    fn map<T>(&self, r: Result<T, String>) -> Result<T, StoreError> {
        r.map_err(|msg| StoreError::Corrupt {
            line: self.line_no,
            msg,
        })
    }
}

/// Parses (and checksums) snapshot text.
///
/// # Errors
///
/// [`StoreError::Version`] for a foreign header, [`StoreError::Checksum`]
/// for payload damage the structural parser cannot even reach, and
/// [`StoreError::Corrupt`] (with a line number) for structural damage.
pub fn parse(text: &str) -> Result<Snapshot, StoreError> {
    // Header and checksum lines are handled before line-based parsing so
    // a corrupt count cannot desynchronize them.
    let mut head = text.splitn(3, '\n');
    let magic = head.next().unwrap_or("");
    if magic != format!("{MAGIC} {SCHEMA_VERSION}") {
        return Err(StoreError::Version {
            found: magic.to_owned(),
        });
    }
    let csum_line = head.next().unwrap_or("");
    let payload = head.next().unwrap_or("");
    let Some(csum) = csum_line.strip_prefix("checksum ") else {
        return Err(StoreError::Corrupt {
            line: 2,
            msg: "missing checksum line".to_owned(),
        });
    };
    let csum = u64::from_str_radix(csum, 16).map_err(|_| StoreError::Corrupt {
        line: 2,
        msg: "bad checksum value".to_owned(),
    })?;
    if fnv1a(payload.as_bytes()) != csum {
        return Err(StoreError::Checksum);
    }

    let mut p = Parser {
        lines: payload.lines(),
        line_no: 2,
    };
    let mut snap = Snapshot::default();

    let t = p.line("skeleton")?;
    snap.skeleton = p.hex_at(&t, 1)?;
    let t = p.line("config")?;
    snap.config = p.hex_at(&t, 1)?;

    let t = p.line("funcs")?;
    let n = p.count(&t, 1)?;
    for _ in 0..n {
        let t = p.line("fn")?;
        snap.functions.push(FnRow {
            func: p.u32_at(&t, 1)?,
            fp: p.hex_at(&t, 2)?,
            name: p.map(dec_str(p.tok(&t, 3)?))?,
        });
    }

    let t = p.line("syms")?;
    let n = p.count(&t, 1)?;
    for _ in 0..n {
        let t = p.line("sym")?;
        snap.syms.push(SymbolicData {
            func: FuncId(p.u32_at(&t, 1)?),
            depth: p.u32_at(&t, 2)?,
            name: p.map(dec_str(p.tok(&t, 3)?))?,
            ty: p.map(dec_opt_ty(p.tok(&t, 4)?))?,
        });
    }

    let t = p.line("locs")?;
    let n = p.count(&t, 1)?;
    for _ in 0..n {
        let t = p.line("loc")?;
        snap.locs.push(LocData {
            base: p.map(dec_base(p.tok(&t, 1)?))?,
            projs: p.map(dec_projs(p.tok(&t, 2)?))?,
            ty: p.map(dec_opt_ty(p.tok(&t, 3)?))?,
            name: p.map(dec_str(p.tok(&t, 4)?))?,
        });
    }

    let t = p.line("ig")?;
    let n = p.count(&t, 1)?;
    snap.root = p.map(dec_opt_u32(p.tok(&t, 2)?))?;
    for _ in 0..n {
        let t = p.line("node")?;
        let stored_input = match p.tok(&t, 6)? {
            "!" => None,
            s => Some(p.map(dec_ptset(s))?),
        };
        let mut row = NodeRow {
            func: p.u32_at(&t, 1)?,
            parent: p.map(dec_opt_u32(p.tok(&t, 2)?))?,
            kind: p.map(dec_kind(p.tok(&t, 3)?))?,
            rec: p.map(dec_opt_u32(p.tok(&t, 4)?))?,
            memo_valid: p.u32_at(&t, 5)? != 0,
            stored_input,
            stored_output: p.map(dec_flow(p.tok(&t, 7)?))?,
            map_info: MapInfo::new(),
            children: Vec::new(),
        };
        let t = p.line("mi")?;
        let k = p.count(&t, 1)?;
        for i in 0..k {
            let entry = p.tok(&t, 2 + i)?;
            let Some((key, reps)) = entry.split_once('=') else {
                return p.err("bad map-info entry");
            };
            let key: u32 = match key.parse() {
                Ok(k) => k,
                Err(_) => return p.err("bad map-info key"),
            };
            let mut locs = Vec::new();
            if !reps.is_empty() {
                for r in reps.split(',') {
                    match r.parse::<u32>() {
                        Ok(v) => locs.push(LocId(v)),
                        Err(_) => return p.err("bad map-info value"),
                    }
                }
            }
            row.map_info.insert(LocId(key), locs);
        }
        let t = p.line("ch")?;
        let k = p.count(&t, 1)?;
        for i in 0..k {
            let entry = p.tok(&t, 2 + i)?;
            let parts: Vec<&str> = entry.split(',').collect();
            if parts.len() != 3 {
                return p.err("bad child entry");
            }
            let nums: Option<Vec<u32>> = parts.iter().map(|s| s.parse().ok()).collect();
            let Some(nums) = nums else {
                return p.err("bad child entry");
            };
            row.children.push((nums[0], nums[1], nums[2]));
        }
        snap.nodes.push(row);
    }

    let t = p.line("caps")?;
    let n = p.count(&t, 1)?;
    for _ in 0..n {
        let t = p.line("cap")?;
        let node = p.u32_at(&t, 1)?;
        let complete = p.u32_at(&t, 2)? != 0;
        let (np, nw, ne) = (p.count(&t, 3)?, p.count(&t, 4)?, p.count(&t, 5)?);
        let mut cap = Capture::new();
        cap.complete = complete;
        for _ in 0..np {
            let t = p.line("cp")?;
            cap.per_stmt
                .insert(StmtId(p.u32_at(&t, 1)?), p.map(dec_ptset(p.tok(&t, 2)?))?);
        }
        for _ in 0..nw {
            let t = p.line("cw")?;
            cap.warnings.push(p.map(dec_str(p.tok(&t, 1)?))?);
        }
        for _ in 0..ne {
            let t = p.line("ce")?;
            cap.escapes.push(parse_escape(&p, &t)?);
        }
        snap.captures.insert(node, cap);
    }

    p.line("result")?;
    let t = p.line("rs")?;
    let n = p.count(&t, 1)?;
    for _ in 0..n {
        let t = p.line("rp")?;
        snap.per_stmt
            .insert(StmtId(p.u32_at(&t, 1)?), p.map(dec_ptset(p.tok(&t, 2)?))?);
    }
    let t = p.line("exit")?;
    snap.exit_set = p.map(dec_ptset(p.tok(&t, 1)?))?;
    let t = p.line("warns")?;
    let n = p.count(&t, 1)?;
    for _ in 0..n {
        let t = p.line("w")?;
        snap.warnings.push(p.map(dec_str(p.tok(&t, 1)?))?);
    }
    let t = p.line("escs")?;
    let n = p.count(&t, 1)?;
    for _ in 0..n {
        let t = p.line("e")?;
        snap.escapes.push(parse_escape(&p, &t)?);
    }

    let t = p.line("lint")?;
    let n = p.count(&t, 1)?;
    let known: Vec<&'static str> = pta_lint::all_checks().iter().map(|c| c.id()).collect();
    for _ in 0..n {
        let t = p.line("l")?;
        let check_id = p.map(dec_str(p.tok(&t, 1)?))?;
        if !known.contains(&check_id.as_str()) {
            return p.err(format!("unknown lint check id `{check_id}`"));
        }
        snap.lint.push(LintRow {
            check_id,
            severity: p.map(dec_severity(p.tok(&t, 2)?))?,
            fidelity: p.map(dec_fidelity(p.tok(&t, 3)?))?,
            stmt: p.map(dec_opt_u32(p.tok(&t, 4)?))?,
            span: (
                self_parse(&p, &t, 5)?,
                self_parse(&p, &t, 6)?,
                p.u32_at(&t, 7)?,
                p.u32_at(&t, 8)?,
            ),
            function: p.map(dec_str(p.tok(&t, 9)?))?,
            message: p.map(dec_str(p.tok(&t, 10)?))?,
        });
    }
    p.line("end")?;
    Ok(snap)
}

fn self_parse(p: &Parser, toks: &[&str], at: usize) -> Result<usize, StoreError> {
    p.tok(toks, at)?.parse().map_err(|_| StoreError::Corrupt {
        line: p.line_no,
        msg: "bad number".to_owned(),
    })
}

fn parse_escape(p: &Parser, toks: &[&str]) -> Result<EscapeEvent, StoreError> {
    Ok(EscapeEvent {
        callee: FuncId(p.u32_at(toks, 1)?),
        call_site: CallSiteId(p.u32_at(toks, 2)?),
        via: p.map(dec_via(p.tok(toks, 3)?))?,
        def: p.map(dec_def(p.tok(toks, 4)?))?,
        local: p.map(dec_str(p.tok(toks, 5)?))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_roundtrip_covers_awkward_bytes() {
        for s in [
            "",
            "plain",
            "two words",
            "percent% sign",
            "tab\there",
            "née",
        ] {
            let enc = enc_str(s);
            assert!(!enc.contains(' '), "{enc:?} must be space-free");
            assert_eq!(dec_str(&enc).unwrap(), s);
        }
    }

    #[test]
    fn type_roundtrip() {
        let sig = FuncSig {
            ret: Type::Int.ptr_to(),
            params: vec![Type::Char, Type::Array(Box::new(Type::Double), Some(4))],
            variadic: true,
        };
        let cases = [
            Type::Void,
            Type::Int.ptr_to().ptr_to(),
            Type::Array(Box::new(Type::Struct(StructId(3))), None),
            Type::Func(Box::new(sig)),
        ];
        for t in cases {
            assert_eq!(dec_ty(&enc_ty(&t)).unwrap(), t, "{}", enc_ty(&t));
        }
        assert!(dec_ty("px").is_err());
        assert!(dec_ty("ii").is_err());
    }

    #[test]
    fn ptset_roundtrip() {
        let mut s = PtSet::new();
        s.insert(LocId(3), LocId(7), Def::D);
        s.insert(LocId(1), LocId(0), Def::P);
        let enc = enc_ptset(&s);
        assert_eq!(dec_ptset(&enc).unwrap(), s);
        assert_eq!(dec_ptset("0").unwrap(), PtSet::new());
        assert_eq!(dec_flow("!").unwrap(), None);
        assert!(dec_ptset("1,2").is_err());
    }

    #[test]
    fn base_and_projs_roundtrip() {
        let bases = [
            LocBase::Global(GlobalId(2)),
            LocBase::Var(FuncId(1), IrVarId(4)),
            LocBase::Symbolic(FuncId(0), 9),
            LocBase::Heap,
            LocBase::HeapSite(12),
            LocBase::Null,
            LocBase::StrLit,
            LocBase::Function(FuncId(5)),
            LocBase::Ret(FuncId(6)),
        ];
        for b in bases {
            assert_eq!(dec_base(&enc_base(&b)).unwrap(), b);
        }
        let projs = vec![Proj::Field("next".into()), Proj::Head, Proj::Tail];
        assert_eq!(dec_projs(&enc_projs(&projs)).unwrap(), projs);
        assert_eq!(dec_projs("-").unwrap(), Vec::<Proj>::new());
    }

    #[test]
    fn empty_snapshot_roundtrip_is_byte_stable() {
        let snap = Snapshot::default();
        let text = serialize(&snap);
        let parsed = parse(&text).unwrap();
        assert_eq!(serialize(&parsed), text);
    }

    #[test]
    fn version_and_checksum_are_enforced() {
        let text = serialize(&Snapshot::default());
        let wrong = text.replacen(SCHEMA_VERSION, "pta.v0", 1);
        assert!(matches!(parse(&wrong), Err(StoreError::Version { .. })));
        // Flip one payload byte: the checksum must catch it.
        let mut damaged = text.clone().into_bytes();
        let i = text.len() - 3;
        damaged[i] = damaged[i].wrapping_add(1);
        let damaged = String::from_utf8(damaged).unwrap();
        assert!(matches!(
            parse(&damaged),
            Err(StoreError::Checksum) | Err(StoreError::Corrupt { .. })
        ));
    }
}
