//! Socket transports for the query server.
//!
//! The wire protocol is exactly the stdio one — JSONL request lines in,
//! JSONL response lines out, metrics on the *server's* stderr — carried
//! over a TCP or Unix-domain socket instead of a pipe. A connection may
//! pipeline any number of request lines without waiting for responses;
//! the server answers strictly in request order, one response line per
//! request line (batch arrays included), so a client can match
//! responses positionally as well as by `id`.
//!
//! [`serve`] runs the accept loop on scoped threads: one thread per
//! connection, all joined before the call returns, so a stop request
//! drains in-flight connections instead of dropping them. Per-request
//! errors — unparsable JSON, invalid UTF-8, unknown programs — are
//! answered in-band and never terminate a connection, let alone the
//! server.

use crate::serve::{QueryMetrics, ServeEngine};
use crate::tenant::Router;
use pta_core::ServeEvent;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Where the server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP host:port, e.g. `127.0.0.1:7411`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Tcp(hp) => write!(f, "tcp:{hp}"),
            ListenAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// Parses a `--listen` value: `unix:PATH`, `tcp:HOST:PORT`, or a bare
/// `HOST:PORT` (TCP).
///
/// # Errors
///
/// A usage message for values matching no form.
pub fn parse_listen(text: &str) -> Result<ListenAddr, String> {
    if let Some(path) = text.strip_prefix("unix:") {
        if path.is_empty() {
            return Err("empty unix socket path in `--listen`".to_owned());
        }
        return Ok(ListenAddr::Unix(PathBuf::from(path)));
    }
    let hp = text.strip_prefix("tcp:").unwrap_or(text);
    if hp.rsplit_once(':').is_some_and(|(h, p)| {
        !h.is_empty() && !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit())
    }) {
        Ok(ListenAddr::Tcp(hp.to_owned()))
    } else {
        Err(format!(
            "bad `--listen` value `{text}` (expected unix:PATH, tcp:HOST:PORT, or HOST:PORT)"
        ))
    }
}

/// A bound listener over either transport.
pub enum Listener {
    /// TCP.
    Tcp(TcpListener),
    /// Unix-domain.
    Unix(UnixListener),
}

/// A connected stream over either transport.
pub enum Stream {
    /// TCP.
    Tcp(TcpStream),
    /// Unix-domain.
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

impl Stream {
    /// An independently owned handle to the same connection (the
    /// read/write halves of a client).
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    /// Half-closes the write side, signalling end-of-requests to a
    /// server (or end-of-responses to a client).
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }

    /// Bounds every subsequent `read` (`None` blocks forever). Reads
    /// that hit the bound fail with `WouldBlock`/`TimedOut`.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Bounds every subsequent `write` (`None` blocks forever).
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(dur),
            Stream::Unix(s) => s.set_write_timeout(dur),
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(on),
            Stream::Unix(s) => s.set_nonblocking(on),
        }
    }
}

impl Listener {
    /// Binds the address. A stale Unix socket file from a previous run
    /// is removed first (the daemon owns its socket path).
    ///
    /// # Errors
    ///
    /// Any bind-time I/O error.
    pub fn bind(addr: &ListenAddr) -> std::io::Result<Listener> {
        match addr {
            ListenAddr::Tcp(hp) => Ok(Listener::Tcp(TcpListener::bind(hp.as_str())?)),
            ListenAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
        }
    }

    /// The actual bound address — the one clients should connect to,
    /// which differs from the requested one for TCP port 0.
    pub fn local_addr(&self) -> ListenAddr {
        match self {
            Listener::Tcp(l) => ListenAddr::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?".to_owned()),
            ),
            Listener::Unix(l) => ListenAddr::Unix(
                l.local_addr()
                    .ok()
                    .and_then(|a| a.as_pathname().map(PathBuf::from))
                    .unwrap_or_default(),
            ),
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(on),
            Listener::Unix(l) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // Request/response over small lines: Nagle + delayed
                // ACK would add a ~40ms stall per exchange.
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// Connects to a server (the client side of [`Listener::bind`]).
///
/// # Errors
///
/// Any connect-time I/O error.
pub fn connect(addr: &ListenAddr) -> std::io::Result<Stream> {
    match addr {
        ListenAddr::Tcp(hp) => TcpStream::connect(hp.as_str()).map(|s| {
            let _ = s.set_nodelay(true);
            Stream::Tcp(s)
        }),
        ListenAddr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
    }
}

/// What the transport needs from a request handler: answer one text
/// line with one response line plus metrics. Implemented by the
/// multi-tenant [`Router`] (the `pta serve --listen` path) and by a
/// bare [`ServeEngine`] (the stress harness serving one snapshot).
pub trait LineHandler: Sync {
    /// Answers one request line (object or batch array).
    fn handle_text(&self, line: &str) -> (String, Vec<QueryMetrics>);

    /// Answers a line that could not even be read as UTF-8 text.
    fn handle_invalid(&self, msg: &str) -> (String, QueryMetrics) {
        (
            format!(
                "{{\"id\":null,\"ok\":false,\"error\":{}}}",
                crate::json::escape(msg)
            ),
            QueryMetrics {
                op: "?".to_owned(),
                ok: false,
                micros: 0,
                program: None,
            },
        )
    }
}

impl LineHandler for ServeEngine {
    fn handle_text(&self, line: &str) -> (String, Vec<QueryMetrics>) {
        ServeEngine::handle_text(self, line)
    }

    fn handle_invalid(&self, msg: &str) -> (String, QueryMetrics) {
        self.error_line(msg)
    }
}

impl LineHandler for Router {
    fn handle_text(&self, line: &str) -> (String, Vec<QueryMetrics>) {
        Router::handle_text(self, line)
    }
}

/// How often the accept loop wakes to check the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Backoff ceiling for transient `accept()` failures (EMFILE and
/// friends must neither busy-spin nor kill the server).
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_secs(1);

/// How often a connection thread wakes from a blocked read to check
/// the stop flag and its I/O deadline.
const IO_POLL: Duration = Duration::from_millis(50);

/// How long a connection with a half-received request may linger after
/// a stop request before the drain closes it anyway.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Overload-hardening knobs for [`serve_with`] (see
/// `docs/ROBUSTNESS.md`). The defaults are the hardened production
/// settings; `0` / `None` disables an individual guard.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Emit per-query [`QueryMetrics`] records on stderr.
    pub metrics: bool,
    /// Shed connections at accept beyond this many concurrent ones
    /// (in-band `overloaded` error). `0` = unlimited.
    pub max_conns: usize,
    /// A complete request line must arrive within this long of its
    /// first byte (slowloris defense), and writes must complete within
    /// it too. `None` = no deadline. Idle connections *between*
    /// requests are never timed out.
    pub io_timeout: Option<Duration>,
    /// Request lines longer than this are answered with an in-band
    /// `too-large` error and discarded (the connection survives).
    /// `0` = unlimited.
    pub max_line_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            metrics: false,
            max_conns: 256,
            io_timeout: Some(Duration::from_secs(10)),
            max_line_bytes: 1 << 20,
        }
    }
}

/// [`serve_with`] under the hardened [`ServeOptions`] defaults.
///
/// # Errors
///
/// Only listener setup failures; see [`serve_with`].
pub fn serve<H: LineHandler>(
    listener: &Listener,
    handler: &H,
    stop: &AtomicBool,
    metrics: bool,
) -> std::io::Result<()> {
    serve_with(
        listener,
        handler,
        stop,
        &ServeOptions {
            metrics,
            ..ServeOptions::default()
        },
    )
}

/// Runs the accept loop until `stop` is raised: every connection gets
/// its own scoped thread reading request lines, answering each in
/// order, and flushing per line (pipelining-friendly). Returns once the
/// flag is observed *and* every in-flight connection has drained
/// (connections finish the request they are reading, idle ones close
/// immediately, and stragglers are cut off after a grace period).
///
/// Overload behavior, per [`ServeOptions`]: connections beyond
/// `max_conns` are shed with an in-band `overloaded` error; request
/// lines beyond `max_line_bytes` are answered `too-large` in-band and
/// discarded; a request that stays incomplete past `io_timeout` gets a
/// best-effort `timeout` error and its connection closed. Transient
/// `accept()` failures retry under capped exponential backoff with a
/// `serve-accept-retry` event instead of spinning or exiting.
///
/// # Errors
///
/// Only listener setup failures; accept-time and per-connection I/O
/// problems never end the loop.
pub fn serve_with<H: LineHandler>(
    listener: &Listener,
    handler: &H,
    stop: &AtomicBool,
    opts: &ServeOptions,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let active = AtomicUsize::new(0);
    let mut backoff = ACCEPT_POLL;
    std::thread::scope(|scope| {
        let active = &active;
        while !stop.load(Ordering::Acquire) {
            match listener.accept() {
                Ok(conn) => {
                    backoff = ACCEPT_POLL;
                    let now_active = active.load(Ordering::Acquire);
                    if opts.max_conns > 0 && now_active >= opts.max_conns {
                        ServeEvent::Overloaded {
                            active: now_active,
                            max: opts.max_conns,
                        }
                        .emit();
                        shed_overloaded(conn, opts.max_conns);
                        continue;
                    }
                    active.fetch_add(1, Ordering::AcqRel);
                    scope.spawn(move || {
                        let result = handle_connection(conn, handler, stop, opts);
                        active.fetch_sub(1, Ordering::AcqRel);
                        if let Err(e) = result {
                            eprintln!("pta serve: connection: {e}");
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    backoff = ACCEPT_POLL;
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => {
                    ServeEvent::AcceptRetry {
                        error: e.to_string(),
                        backoff_ms: backoff.as_millis() as u64,
                    }
                    .emit();
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(ACCEPT_BACKOFF_CAP);
                }
            }
        }
        let in_flight = active.load(Ordering::Acquire);
        if in_flight > 0 {
            ServeEvent::Drain { conns: in_flight }.emit();
        }
        Ok(())
        // Leaving the scope joins every connection thread: the drain.
    })
}

/// Best-effort in-band shedding of a connection accepted over the
/// `max_conns` cap. Short write deadline: a shed client must never be
/// able to stall the accept loop.
fn shed_overloaded(mut conn: Stream, max: usize) {
    let _ = conn.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = conn.write_all(
        format!("{{\"id\":null,\"ok\":false,\"error\":\"overloaded: serving {max} connections (--max-conns)\"}}\n")
            .as_bytes(),
    );
    let _ = conn.flush();
}

/// Serves one connection to completion: client EOF, I/O error, an
/// expired request deadline, or a stop-flag drain.
fn handle_connection<H: LineHandler>(
    conn: Stream,
    handler: &H,
    stop: &AtomicBool,
    opts: &ServeOptions,
) -> std::io::Result<()> {
    // Linux `accept` does not inherit the listener's nonblocking flag,
    // but be explicit: the read loop below relies on timeout semantics.
    conn.set_nonblocking(false)?;
    conn.set_read_timeout(Some(IO_POLL))?;
    conn.set_write_timeout(opts.io_timeout)?;
    let mut out = conn.try_clone()?;
    let mut reader = conn;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    // When the current (incomplete) request line started arriving.
    let mut line_start: Option<Instant> = None;
    // Inside an oversized line that was already answered `too-large`:
    // swallow bytes until its newline, then resync.
    let mut discarding = false;
    let mut stop_seen: Option<Instant> = None;
    loop {
        // Serve every complete line already buffered.
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=pos).collect();
            line_start = if pending.is_empty() {
                None
            } else {
                Some(Instant::now())
            };
            if discarding {
                discarding = false;
                continue;
            }
            // `line` still carries its terminating newline.
            if opts.max_line_bytes > 0 && line.len() - 1 > opts.max_line_bytes {
                answer_too_large(handler, &mut out, opts)?;
                continue;
            }
            let (response, batch) = match std::str::from_utf8(&line) {
                Ok(text) if text.trim().is_empty() => continue,
                Ok(text) => handler.handle_text(text),
                Err(_) => {
                    let (r, m) = handler.handle_invalid("bad request: invalid UTF-8");
                    (r, vec![m])
                }
            };
            if opts.metrics {
                for m in &batch {
                    eprintln!("{}", m.render());
                }
            }
            out.write_all(response.as_bytes())?;
            out.write_all(b"\n")?;
            out.flush()?;
        }
        // A still-unterminated over-long line: answer in-band now, then
        // discard bytes until its newline finally arrives.
        if !discarding && opts.max_line_bytes > 0 && pending.len() > opts.max_line_bytes {
            answer_too_large(handler, &mut out, opts)?;
            pending.clear();
            line_start = None;
            discarding = true;
        }
        if stop.load(Ordering::Acquire) && stop_seen.is_none() {
            stop_seen = Some(Instant::now());
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Ok(()), // client EOF: clean close
            Ok(n) => {
                if pending.is_empty() && !discarding {
                    line_start = Some(Instant::now());
                }
                pending.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Graceful drain: between requests there is nothing in
                // flight — close. A half-received request gets until
                // its own deadline, bounded by the drain grace.
                if let Some(seen) = stop_seen {
                    if (pending.is_empty() && !discarding) || seen.elapsed() >= DRAIN_GRACE {
                        return Ok(());
                    }
                }
                // Slowloris defense: a started request line must
                // complete within the I/O deadline.
                if let (Some(deadline), Some(started)) = (opts.io_timeout, line_start) {
                    if started.elapsed() >= deadline {
                        let (response, _) = handler.handle_invalid(&format!(
                            "timeout: no complete request line within {}ms",
                            deadline.as_millis()
                        ));
                        let _ = out.write_all(response.as_bytes());
                        let _ = out.write_all(b"\n");
                        let _ = out.flush();
                        return Ok(());
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Answers one over-the-cap request line with the in-band `too-large`
/// error (the connection itself survives).
fn answer_too_large<H: LineHandler>(
    handler: &H,
    out: &mut Stream,
    opts: &ServeOptions,
) -> std::io::Result<()> {
    let (response, m) = handler.handle_invalid(&format!(
        "too-large: request line exceeds {} bytes",
        opts.max_line_bytes
    ));
    if opts.metrics {
        eprintln!("{}", m.render());
    }
    out.write_all(response.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::sync::Arc;

    #[test]
    fn listen_addresses_parse() {
        assert_eq!(
            parse_listen("127.0.0.1:7411"),
            Ok(ListenAddr::Tcp("127.0.0.1:7411".to_owned()))
        );
        assert_eq!(
            parse_listen("tcp:localhost:80"),
            Ok(ListenAddr::Tcp("localhost:80".to_owned()))
        );
        assert_eq!(
            parse_listen("unix:/tmp/pta.sock"),
            Ok(ListenAddr::Unix(PathBuf::from("/tmp/pta.sock")))
        );
        for bad in ["", "nope", "tcp:", "unix:", "host:", ":80", "host:8x0"] {
            assert!(parse_listen(bad).is_err(), "{bad}");
        }
    }

    fn test_engine() -> ServeEngine {
        let pta =
            pta_core::run_source("int x; int main(void) { int *p; p = &x; return *p; }").unwrap();
        ServeEngine::new(pta, Vec::new())
    }

    #[test]
    fn tcp_round_trip_with_pipelining_and_bad_lines() {
        let listener = Listener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_owned())).unwrap();
        let addr = listener.local_addr();
        let engine = test_engine();
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let stop2 = Arc::clone(&stop);
            let server = s.spawn(move || serve(&listener, &engine, &stop2, false));
            let mut conn = connect(&addr).unwrap();
            // Pipeline: two requests, a malformed line, a batch, and an
            // invalid-UTF-8 line, all before reading anything back.
            conn.write_all(
                b"{\"id\":1,\"op\":\"points-to\",\"func\":\"main\",\"var\":\"p\"}\n\
                  not json\n\
                  [{\"id\":2,\"op\":\"lint\"},{\"id\":3,\"op\":\"nope\"}]\n",
            )
            .unwrap();
            conn.write_all(b"\xff\xfe bad bytes\n").unwrap();
            conn.shutdown_write().unwrap();
            let mut responses = String::new();
            BufReader::new(conn).read_to_string(&mut responses).unwrap();
            let lines: Vec<&str> = responses.lines().collect();
            assert_eq!(lines.len(), 4, "{responses}");
            assert!(
                lines[0].starts_with("{\"id\":1,\"ok\":true"),
                "{}",
                lines[0]
            );
            assert!(
                lines[1].starts_with("{\"id\":null,\"ok\":false"),
                "{}",
                lines[1]
            );
            assert!(
                lines[2].starts_with("[{\"id\":2,\"ok\":true"),
                "{}",
                lines[2]
            );
            assert!(lines[2].contains("\"id\":3,\"ok\":false"), "{}", lines[2]);
            assert!(lines[3].contains("invalid UTF-8"), "{}", lines[3]);
            stop.store(true, Ordering::Release);
            server.join().unwrap().unwrap();
        });
    }

    #[test]
    fn connections_past_max_conns_are_shed_in_band() {
        let listener = Listener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_owned())).unwrap();
        let addr = listener.local_addr();
        let engine = test_engine();
        let stop = Arc::new(AtomicBool::new(false));
        let opts = ServeOptions {
            max_conns: 1,
            ..ServeOptions::default()
        };
        // Asserting only after stop+join keeps a failure from
        // deadlocking the scope on a still-running server thread.
        let (line, response) = std::thread::scope(|s| {
            let stop2 = Arc::clone(&stop);
            let server = s.spawn(move || serve_with(&listener, &engine, &stop2, &opts));
            // First connection: answered, then *held open* so it stays
            // counted as active.
            let mut held = connect(&addr).unwrap();
            held.write_all(b"{\"id\":1,\"op\":\"lint\"}\n").unwrap();
            let mut reader = BufReader::new(held.try_clone().unwrap());
            let mut line = String::new();
            use std::io::BufRead as _;
            reader.read_line(&mut line).unwrap();
            // Second connection: shed at accept with an in-band error.
            let shed = connect(&addr).unwrap();
            let mut response = String::new();
            let _ = BufReader::new(shed).read_to_string(&mut response);
            drop(reader);
            drop(held);
            stop.store(true, Ordering::Release);
            server.join().unwrap().unwrap();
            (line, response)
        });
        assert!(line.starts_with("{\"id\":1,\"ok\":true"), "{line}");
        assert!(
            response.starts_with("{\"id\":null,\"ok\":false,\"error\":\"overloaded"),
            "{response}"
        );
    }

    #[test]
    fn oversized_lines_answer_too_large_and_the_connection_resyncs() {
        let listener = Listener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_owned())).unwrap();
        let addr = listener.local_addr();
        let engine = test_engine();
        let stop = Arc::new(AtomicBool::new(false));
        let opts = ServeOptions {
            max_line_bytes: 256,
            ..ServeOptions::default()
        };
        let responses = std::thread::scope(|s| {
            let stop2 = Arc::clone(&stop);
            let server = s.spawn(move || serve_with(&listener, &engine, &stop2, &opts));
            let mut conn = connect(&addr).unwrap();
            let huge = "x".repeat(4096);
            conn.write_all(format!("{huge}\n").as_bytes()).unwrap();
            conn.write_all(b"{\"id\":2,\"op\":\"lint\"}\n").unwrap();
            conn.shutdown_write().unwrap();
            let mut responses = String::new();
            let _ = BufReader::new(conn).read_to_string(&mut responses);
            stop.store(true, Ordering::Release);
            server.join().unwrap().unwrap();
            responses
        });
        let lines: Vec<&str> = responses.lines().collect();
        assert_eq!(lines.len(), 2, "{responses}");
        assert!(lines[0].contains("too-large"), "{}", lines[0]);
        // The connection survived the oversized line.
        assert!(
            lines[1].starts_with("{\"id\":2,\"ok\":true"),
            "{}",
            lines[1]
        );
    }

    #[test]
    fn a_stalled_request_line_times_out_in_band() {
        let listener = Listener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_owned())).unwrap();
        let addr = listener.local_addr();
        let engine = test_engine();
        let stop = Arc::new(AtomicBool::new(false));
        let opts = ServeOptions {
            io_timeout: Some(Duration::from_millis(200)),
            ..ServeOptions::default()
        };
        let (response, waited) = std::thread::scope(|s| {
            let stop2 = Arc::clone(&stop);
            let server = s.spawn(move || serve_with(&listener, &engine, &stop2, &opts));
            // A slowloris client: half a request, then silence.
            let mut conn = connect(&addr).unwrap();
            conn.write_all(b"{\"id\":9,\"op\":").unwrap();
            conn.flush().unwrap();
            let t0 = std::time::Instant::now();
            let mut response = String::new();
            let _ = BufReader::new(conn).read_to_string(&mut response);
            let waited = t0.elapsed();
            stop.store(true, Ordering::Release);
            server.join().unwrap().unwrap();
            (response, waited)
        });
        assert!(response.contains("timeout"), "{response}");
        assert!(
            waited < Duration::from_secs(5),
            "stalled connection was not cut off promptly ({waited:?})"
        );
    }

    #[test]
    fn stop_drains_idle_connections_instead_of_hanging() {
        let listener = Listener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_owned())).unwrap();
        let addr = listener.local_addr();
        let engine = test_engine();
        let stop = Arc::new(AtomicBool::new(false));
        let (line, drained_in) = std::thread::scope(|s| {
            let stop2 = Arc::clone(&stop);
            let server = s.spawn(move || serve(&listener, &engine, &stop2, false));
            // An idle connection held open across the stop request: the
            // old server would block in read_until forever; the drain
            // must close it and let the accept scope join.
            let mut conn = connect(&addr).unwrap();
            conn.write_all(b"{\"id\":1,\"op\":\"lint\"}\n").unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut line = String::new();
            use std::io::BufRead as _;
            reader.read_line(&mut line).unwrap();
            let t0 = std::time::Instant::now();
            stop.store(true, Ordering::Release);
            server.join().unwrap().unwrap();
            let drained_in = t0.elapsed();
            drop(reader);
            drop(conn);
            (line, drained_in)
        });
        assert!(line.contains("\"ok\":true"), "{line}");
        assert!(
            drained_in < Duration::from_secs(5),
            "drain took {drained_in:?}"
        );
    }

    #[test]
    fn unix_socket_round_trip() {
        let path = std::env::temp_dir().join(format!("pta-serve-test-{}.sock", std::process::id()));
        let listener = Listener::bind(&ListenAddr::Unix(path.clone())).unwrap();
        let engine = test_engine();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let server = s.spawn(|| serve(&listener, &engine, &stop, true));
            let mut conn = connect(&ListenAddr::Unix(path.clone())).unwrap();
            conn.write_all(b"{\"id\":7,\"op\":\"points-to\",\"func\":\"main\",\"var\":\"p\"}\n")
                .unwrap();
            conn.shutdown_write().unwrap();
            let mut responses = String::new();
            BufReader::new(conn).read_to_string(&mut responses).unwrap();
            assert!(
                responses.starts_with("{\"id\":7,\"ok\":true"),
                "{responses}"
            );
            assert!(responses.contains("\"name\":\"x\""), "{responses}");
            stop.store(true, Ordering::Release);
            server.join().unwrap().unwrap();
        });
        let _ = std::fs::remove_file(&path);
    }
}
