//! Socket transports for the query server.
//!
//! The wire protocol is exactly the stdio one — JSONL request lines in,
//! JSONL response lines out, metrics on the *server's* stderr — carried
//! over a TCP or Unix-domain socket instead of a pipe. A connection may
//! pipeline any number of request lines without waiting for responses;
//! the server answers strictly in request order, one response line per
//! request line (batch arrays included), so a client can match
//! responses positionally as well as by `id`.
//!
//! [`serve`] runs the accept loop on scoped threads: one thread per
//! connection, all joined before the call returns, so a stop request
//! drains in-flight connections instead of dropping them. Per-request
//! errors — unparsable JSON, invalid UTF-8, unknown programs — are
//! answered in-band and never terminate a connection, let alone the
//! server.

use crate::serve::{QueryMetrics, ServeEngine};
use crate::tenant::Router;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Where the server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP host:port, e.g. `127.0.0.1:7411`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Tcp(hp) => write!(f, "tcp:{hp}"),
            ListenAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// Parses a `--listen` value: `unix:PATH`, `tcp:HOST:PORT`, or a bare
/// `HOST:PORT` (TCP).
///
/// # Errors
///
/// A usage message for values matching no form.
pub fn parse_listen(text: &str) -> Result<ListenAddr, String> {
    if let Some(path) = text.strip_prefix("unix:") {
        if path.is_empty() {
            return Err("empty unix socket path in `--listen`".to_owned());
        }
        return Ok(ListenAddr::Unix(PathBuf::from(path)));
    }
    let hp = text.strip_prefix("tcp:").unwrap_or(text);
    if hp.rsplit_once(':').is_some_and(|(h, p)| {
        !h.is_empty() && !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit())
    }) {
        Ok(ListenAddr::Tcp(hp.to_owned()))
    } else {
        Err(format!(
            "bad `--listen` value `{text}` (expected unix:PATH, tcp:HOST:PORT, or HOST:PORT)"
        ))
    }
}

/// A bound listener over either transport.
pub enum Listener {
    /// TCP.
    Tcp(TcpListener),
    /// Unix-domain.
    Unix(UnixListener),
}

/// A connected stream over either transport.
pub enum Stream {
    /// TCP.
    Tcp(TcpStream),
    /// Unix-domain.
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

impl Stream {
    /// An independently owned handle to the same connection (the
    /// read/write halves of a client).
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    /// Half-closes the write side, signalling end-of-requests to a
    /// server (or end-of-responses to a client).
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }
}

impl Listener {
    /// Binds the address. A stale Unix socket file from a previous run
    /// is removed first (the daemon owns its socket path).
    ///
    /// # Errors
    ///
    /// Any bind-time I/O error.
    pub fn bind(addr: &ListenAddr) -> std::io::Result<Listener> {
        match addr {
            ListenAddr::Tcp(hp) => Ok(Listener::Tcp(TcpListener::bind(hp.as_str())?)),
            ListenAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
        }
    }

    /// The actual bound address — the one clients should connect to,
    /// which differs from the requested one for TCP port 0.
    pub fn local_addr(&self) -> ListenAddr {
        match self {
            Listener::Tcp(l) => ListenAddr::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?".to_owned()),
            ),
            Listener::Unix(l) => ListenAddr::Unix(
                l.local_addr()
                    .ok()
                    .and_then(|a| a.as_pathname().map(PathBuf::from))
                    .unwrap_or_default(),
            ),
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(on),
            Listener::Unix(l) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // Request/response over small lines: Nagle + delayed
                // ACK would add a ~40ms stall per exchange.
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// Connects to a server (the client side of [`Listener::bind`]).
///
/// # Errors
///
/// Any connect-time I/O error.
pub fn connect(addr: &ListenAddr) -> std::io::Result<Stream> {
    match addr {
        ListenAddr::Tcp(hp) => TcpStream::connect(hp.as_str()).map(|s| {
            let _ = s.set_nodelay(true);
            Stream::Tcp(s)
        }),
        ListenAddr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
    }
}

/// What the transport needs from a request handler: answer one text
/// line with one response line plus metrics. Implemented by the
/// multi-tenant [`Router`] (the `pta serve --listen` path) and by a
/// bare [`ServeEngine`] (the stress harness serving one snapshot).
pub trait LineHandler: Sync {
    /// Answers one request line (object or batch array).
    fn handle_text(&self, line: &str) -> (String, Vec<QueryMetrics>);

    /// Answers a line that could not even be read as UTF-8 text.
    fn handle_invalid(&self, msg: &str) -> (String, QueryMetrics) {
        (
            format!(
                "{{\"id\":null,\"ok\":false,\"error\":{}}}",
                crate::json::escape(msg)
            ),
            QueryMetrics {
                op: "?".to_owned(),
                ok: false,
                micros: 0,
                program: None,
            },
        )
    }
}

impl LineHandler for ServeEngine {
    fn handle_text(&self, line: &str) -> (String, Vec<QueryMetrics>) {
        ServeEngine::handle_text(self, line)
    }

    fn handle_invalid(&self, msg: &str) -> (String, QueryMetrics) {
        self.error_line(msg)
    }
}

impl LineHandler for Router {
    fn handle_text(&self, line: &str) -> (String, Vec<QueryMetrics>) {
        Router::handle_text(self, line)
    }
}

/// How often the accept loop wakes to check the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Runs the accept loop until `stop` is raised: every connection gets
/// its own scoped thread reading request lines, answering each in
/// order, and flushing per line (pipelining-friendly). Returns once the
/// flag is observed *and* every in-flight connection has drained.
///
/// With `metrics`, per-query records go to stderr via
/// [`QueryMetrics::render`].
///
/// # Errors
///
/// Only fatal listener errors; per-connection I/O problems end that
/// connection alone.
pub fn serve<H: LineHandler>(
    listener: &Listener,
    handler: &H,
    stop: &AtomicBool,
    metrics: bool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|scope| {
        while !stop.load(Ordering::Acquire) {
            match listener.accept() {
                Ok(conn) => {
                    scope.spawn(move || {
                        if let Err(e) = handle_connection(conn, handler, metrics) {
                            eprintln!("pta serve: connection: {e}");
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    })
}

/// Serves one connection to completion (client EOF or I/O error).
fn handle_connection<H: LineHandler>(
    conn: Stream,
    handler: &H,
    metrics: bool,
) -> std::io::Result<()> {
    let mut out = conn.try_clone()?;
    let mut reader = BufReader::new(conn);
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            return Ok(()); // client EOF: clean close
        }
        let (response, batch) = match std::str::from_utf8(&buf) {
            Ok(text) if text.trim().is_empty() => continue,
            Ok(text) => handler.handle_text(text),
            Err(_) => {
                let (r, m) = handler.handle_invalid("bad request: invalid UTF-8");
                (r, vec![m])
            }
        };
        if metrics {
            for m in &batch {
                eprintln!("{}", m.render());
            }
        }
        out.write_all(response.as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn listen_addresses_parse() {
        assert_eq!(
            parse_listen("127.0.0.1:7411"),
            Ok(ListenAddr::Tcp("127.0.0.1:7411".to_owned()))
        );
        assert_eq!(
            parse_listen("tcp:localhost:80"),
            Ok(ListenAddr::Tcp("localhost:80".to_owned()))
        );
        assert_eq!(
            parse_listen("unix:/tmp/pta.sock"),
            Ok(ListenAddr::Unix(PathBuf::from("/tmp/pta.sock")))
        );
        for bad in ["", "nope", "tcp:", "unix:", "host:", ":80", "host:8x0"] {
            assert!(parse_listen(bad).is_err(), "{bad}");
        }
    }

    fn test_engine() -> ServeEngine {
        let pta =
            pta_core::run_source("int x; int main(void) { int *p; p = &x; return *p; }").unwrap();
        ServeEngine::new(pta, Vec::new())
    }

    #[test]
    fn tcp_round_trip_with_pipelining_and_bad_lines() {
        let listener = Listener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_owned())).unwrap();
        let addr = listener.local_addr();
        let engine = test_engine();
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let stop2 = Arc::clone(&stop);
            let server = s.spawn(move || serve(&listener, &engine, &stop2, false));
            let mut conn = connect(&addr).unwrap();
            // Pipeline: two requests, a malformed line, a batch, and an
            // invalid-UTF-8 line, all before reading anything back.
            conn.write_all(
                b"{\"id\":1,\"op\":\"points-to\",\"func\":\"main\",\"var\":\"p\"}\n\
                  not json\n\
                  [{\"id\":2,\"op\":\"lint\"},{\"id\":3,\"op\":\"nope\"}]\n",
            )
            .unwrap();
            conn.write_all(b"\xff\xfe bad bytes\n").unwrap();
            conn.shutdown_write().unwrap();
            let mut responses = String::new();
            BufReader::new(conn).read_to_string(&mut responses).unwrap();
            let lines: Vec<&str> = responses.lines().collect();
            assert_eq!(lines.len(), 4, "{responses}");
            assert!(
                lines[0].starts_with("{\"id\":1,\"ok\":true"),
                "{}",
                lines[0]
            );
            assert!(
                lines[1].starts_with("{\"id\":null,\"ok\":false"),
                "{}",
                lines[1]
            );
            assert!(
                lines[2].starts_with("[{\"id\":2,\"ok\":true"),
                "{}",
                lines[2]
            );
            assert!(lines[2].contains("\"id\":3,\"ok\":false"), "{}", lines[2]);
            assert!(lines[3].contains("invalid UTF-8"), "{}", lines[3]);
            stop.store(true, Ordering::Release);
            server.join().unwrap().unwrap();
        });
    }

    #[test]
    fn unix_socket_round_trip() {
        let path = std::env::temp_dir().join(format!("pta-serve-test-{}.sock", std::process::id()));
        let listener = Listener::bind(&ListenAddr::Unix(path.clone())).unwrap();
        let engine = test_engine();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let server = s.spawn(|| serve(&listener, &engine, &stop, true));
            let mut conn = connect(&ListenAddr::Unix(path.clone())).unwrap();
            conn.write_all(b"{\"id\":7,\"op\":\"points-to\",\"func\":\"main\",\"var\":\"p\"}\n")
                .unwrap();
            conn.shutdown_write().unwrap();
            let mut responses = String::new();
            BufReader::new(conn).read_to_string(&mut responses).unwrap();
            assert!(
                responses.starts_with("{\"id\":7,\"ok\":true"),
                "{responses}"
            );
            assert!(responses.contains("\"name\":\"x\""), "{responses}");
            stop.store(true, Ordering::Release);
            server.join().unwrap().unwrap();
        });
        let _ = std::fs::remove_file(&path);
    }
}
