//! Numbered I/O fault-injection points for the store.
//!
//! Crash-safety claims are only as good as the failures they were
//! tested against, so every I/O step of the snapshot save/load path is
//! a *numbered fault point* that a [`FaultPlan`] can make fail or
//! truncate on demand. The chaos harness (`pta-chaos`) and the store
//! tests arm plans programmatically; operators and CI can arm one for
//! a whole process with the `PTA_FAULT` environment variable.
//!
//! Off by default and zero-cost when disarmed: the hot path is a single
//! relaxed atomic load.
//!
//! ## Plan syntax (`PTA_FAULT` or [`FaultPlan::parse`])
//!
//! ```text
//! POINT[:trunc][@HIT]
//! ```
//!
//! - `POINT` — the fault-point number (see [`POINTS`]).
//! - `:trunc` — truncate the I/O at that point (write/read only part of
//!   the data, then fail) instead of failing outright.
//! - `@HIT` — fire on the HIT-th time the point is reached (1-based,
//!   default 1).
//!
//! A plan fires **once** and then disarms itself, so a single injected
//! fault never cascades into unrelated I/O later in the process.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Fault point: creating the snapshot tempfile.
pub const SAVE_CREATE: u32 = 1;
/// Fault point: writing the serialized payload to the tempfile.
pub const SAVE_WRITE: u32 = 2;
/// Fault point: fsyncing the tempfile before the rename.
pub const SAVE_SYNC: u32 = 3;
/// Fault point: atomically renaming the tempfile over the snapshot.
pub const SAVE_RENAME: u32 = 4;
/// Fault point: fsyncing the directory after the rename.
pub const SAVE_DIRSYNC: u32 = 5;
/// Fault point: reading the snapshot file on load.
pub const LOAD_READ: u32 = 6;

/// Every declared fault point, as `(number, name)` — the chaos harness
/// iterates this to prove each one degrades gracefully.
pub const POINTS: &[(u32, &str)] = &[
    (SAVE_CREATE, "save.create"),
    (SAVE_WRITE, "save.write"),
    (SAVE_SYNC, "save.sync"),
    (SAVE_RENAME, "save.rename"),
    (SAVE_DIRSYNC, "save.dirsync"),
    (LOAD_READ, "load.read"),
];

/// How an armed point misbehaves when hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails outright with an injected I/O error.
    Fail,
    /// The operation transfers only part of its data, then fails —
    /// a torn write (or read) as a crash mid-I/O would leave it.
    Truncate,
}

/// One armed fault: which point, how it misbehaves, and on which hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault-point number (one of [`POINTS`]).
    pub point: u32,
    /// Fail or truncate.
    pub mode: FaultMode,
    /// Fire on the `hit`-th time the point is reached (1-based).
    pub hit: u32,
}

impl FaultPlan {
    /// Parses `POINT[:trunc][@HIT]` (the `PTA_FAULT` syntax).
    ///
    /// # Errors
    ///
    /// A usage message for anything else.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (head, hit) = match spec.split_once('@') {
            Some((h, n)) => (
                h,
                n.parse::<u32>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad fault hit count `{n}` (want a 1-based integer)"))?,
            ),
            None => (spec, 1),
        };
        let (point_text, mode) = match head.split_once(':') {
            Some((p, "trunc")) => (p, FaultMode::Truncate),
            Some((_, other)) => return Err(format!("bad fault mode `{other}` (want `trunc`)")),
            None => (head, FaultMode::Fail),
        };
        let point = point_text
            .parse::<u32>()
            .ok()
            .filter(|p| POINTS.iter().any(|(n, _)| n == p))
            .ok_or_else(|| {
                let names: Vec<String> = POINTS
                    .iter()
                    .map(|(n, name)| format!("{n}={name}"))
                    .collect();
                format!(
                    "bad fault point `{point_text}` (declared points: {})",
                    names.join(", ")
                )
            })?;
        Ok(FaultPlan { point, mode, hit })
    }

    /// The human-readable name of this plan's point.
    pub fn point_name(&self) -> &'static str {
        POINTS
            .iter()
            .find(|(n, _)| *n == self.point)
            .map(|(_, name)| *name)
            .unwrap_or("?")
    }
}

struct PlanState {
    plan: FaultPlan,
    /// Times the armed point has been reached so far.
    seen: u32,
}

/// Fast-path gate: false ⇒ no plan can fire, skip the mutex entirely.
static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<PlanState>> = Mutex::new(None);
static ENV_INIT: OnceLock<()> = OnceLock::new();

/// Arms a plan process-wide (replacing any armed one). The plan fires
/// once and disarms itself; [`disarm`] cancels it early.
pub fn arm(plan: FaultPlan) {
    *PLAN.lock().expect("fault plan lock") = Some(PlanState { plan, seen: 0 });
    ARMED.store(true, Ordering::Release);
}

/// Disarms any armed plan.
pub fn disarm() {
    *PLAN.lock().expect("fault plan lock") = None;
    ARMED.store(false, Ordering::Release);
}

/// True while a plan is armed and has not fired yet.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

fn arm_from_env() {
    ENV_INIT.get_or_init(|| {
        if let Ok(spec) = std::env::var("PTA_FAULT") {
            match FaultPlan::parse(&spec) {
                Ok(plan) => {
                    arm(plan);
                    eprintln!(
                        "pta store: fault plan armed from PTA_FAULT: \
                         point {} ({}), {:?}, hit {}",
                        plan.point,
                        plan.point_name(),
                        plan.mode,
                        plan.hit
                    );
                }
                Err(e) => eprintln!("pta store: ignoring PTA_FAULT `{spec}`: {e}"),
            }
        }
    });
}

/// Called by the store at each numbered I/O point: `Some(mode)` when
/// the armed plan fires here (the plan then disarms itself), `None`
/// otherwise. Disarmed cost: one relaxed atomic load.
pub(crate) fn check(point: u32) -> Option<FaultMode> {
    arm_from_env();
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let mut guard = PLAN.lock().expect("fault plan lock");
    let state = guard.as_mut()?;
    if state.plan.point != point {
        return None;
    }
    state.seen += 1;
    if state.seen < state.plan.hit {
        return None;
    }
    let mode = state.plan.mode;
    *guard = None;
    ARMED.store(false, Ordering::Release);
    Some(mode)
}

/// The error an injected [`FaultMode::Fail`] produces.
pub(crate) fn injected_error(point: u32) -> std::io::Error {
    let name = POINTS
        .iter()
        .find(|(n, _)| *n == point)
        .map(|(_, name)| *name)
        .unwrap_or("?");
    std::io::Error::other(format!("injected fault at point {point} ({name})"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_parse_and_reject() {
        assert_eq!(
            FaultPlan::parse("2"),
            Ok(FaultPlan {
                point: SAVE_WRITE,
                mode: FaultMode::Fail,
                hit: 1
            })
        );
        assert_eq!(
            FaultPlan::parse("4:trunc@3"),
            Ok(FaultPlan {
                point: SAVE_RENAME,
                mode: FaultMode::Truncate,
                hit: 3
            })
        );
        for bad in ["", "0", "99", "2:chop", "2@0", "2@x", "nope"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn point_names_cover_every_declared_point() {
        for &(n, name) in POINTS {
            let plan = FaultPlan {
                point: n,
                mode: FaultMode::Fail,
                hit: 1,
            };
            assert_eq!(plan.point_name(), name);
        }
    }
}
