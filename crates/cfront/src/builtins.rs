//! Modelled external (library) functions.
//!
//! The analysis is whole-program, so every callee must either be defined
//! or be one of these modelled externals. Each entry carries the
//! points-to effect class consumed by `pta-core`.

use crate::types::{FuncSig, Type};

/// How an external function affects points-to information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExternEffect {
    /// No pointer effects at all (pure w.r.t. the pointer graph):
    /// `printf`, `strcmp`, `sqrt`, …
    None,
    /// Returns a fresh heap pointer: `malloc`, `calloc`, `realloc`.
    ReturnsHeap,
    /// Returns its first argument (pointer pass-through): `strcpy`,
    /// `memcpy`, `memset`, `strcat`, `fgets`, `gets`.
    ReturnsFirstArg,
    /// Deallocates; no points-to effect in the paper's model: `free`.
    Free,
    /// Terminates the program: `exit`, `abort`.
    NoReturn,
}

/// A modelled external function.
#[derive(Debug, Clone)]
pub struct Builtin {
    /// Function name.
    pub name: &'static str,
    /// Its signature.
    pub sig: FuncSig,
    /// Points-to effect class.
    pub effect: ExternEffect,
}

fn sig(ret: Type, params: Vec<Type>, variadic: bool) -> FuncSig {
    FuncSig {
        ret,
        params,
        variadic,
    }
}

fn vp() -> Type {
    Type::Void.ptr_to()
}

fn cp() -> Type {
    Type::Char.ptr_to()
}

/// The table of modelled externals.
pub fn builtins() -> Vec<Builtin> {
    use ExternEffect::*;
    let b = |name, s, effect| Builtin {
        name,
        sig: s,
        effect,
    };
    vec![
        b("malloc", sig(vp(), vec![Type::Int], false), ReturnsHeap),
        b(
            "calloc",
            sig(vp(), vec![Type::Int, Type::Int], false),
            ReturnsHeap,
        ),
        b(
            "realloc",
            sig(vp(), vec![vp(), Type::Int], false),
            ReturnsHeap,
        ),
        b("free", sig(Type::Void, vec![vp()], false), Free),
        b("exit", sig(Type::Void, vec![Type::Int], false), NoReturn),
        b("abort", sig(Type::Void, vec![], false), NoReturn),
        b("printf", sig(Type::Int, vec![cp()], true), None),
        b("fprintf", sig(Type::Int, vec![vp(), cp()], true), None),
        b("sprintf", sig(Type::Int, vec![cp(), cp()], true), None),
        b("scanf", sig(Type::Int, vec![cp()], true), None),
        b("sscanf", sig(Type::Int, vec![cp(), cp()], true), None),
        b("fscanf", sig(Type::Int, vec![vp(), cp()], true), None),
        b("puts", sig(Type::Int, vec![cp()], false), None),
        b("putchar", sig(Type::Int, vec![Type::Int], false), None),
        b("getchar", sig(Type::Int, vec![], false), None),
        b("getc", sig(Type::Int, vec![vp()], false), None),
        b("putc", sig(Type::Int, vec![Type::Int, vp()], false), None),
        b("fopen", sig(vp(), vec![cp(), cp()], false), ReturnsHeap),
        b("fclose", sig(Type::Int, vec![vp()], false), None),
        b(
            "fgets",
            sig(cp(), vec![cp(), Type::Int, vp()], false),
            ReturnsFirstArg,
        ),
        b("gets", sig(cp(), vec![cp()], false), ReturnsFirstArg),
        b(
            "strcpy",
            sig(cp(), vec![cp(), cp()], false),
            ReturnsFirstArg,
        ),
        b(
            "strncpy",
            sig(cp(), vec![cp(), cp(), Type::Int], false),
            ReturnsFirstArg,
        ),
        b(
            "strcat",
            sig(cp(), vec![cp(), cp()], false),
            ReturnsFirstArg,
        ),
        b("strcmp", sig(Type::Int, vec![cp(), cp()], false), None),
        b(
            "strncmp",
            sig(Type::Int, vec![cp(), cp(), Type::Int], false),
            None,
        ),
        b("strlen", sig(Type::Int, vec![cp()], false), None),
        b(
            "memset",
            sig(vp(), vec![vp(), Type::Int, Type::Int], false),
            ReturnsFirstArg,
        ),
        b(
            "memcpy",
            sig(vp(), vec![vp(), vp(), Type::Int], false),
            ReturnsFirstArg,
        ),
        b("atoi", sig(Type::Int, vec![cp()], false), None),
        b("atof", sig(Type::Double, vec![cp()], false), None),
        b("abs", sig(Type::Int, vec![Type::Int], false), None),
        b("rand", sig(Type::Int, vec![], false), None),
        b("srand", sig(Type::Void, vec![Type::Int], false), None),
        b("clock", sig(Type::Int, vec![], false), None),
        b("time", sig(Type::Int, vec![vp()], false), None),
        b("sqrt", sig(Type::Double, vec![Type::Double], false), None),
        b("fabs", sig(Type::Double, vec![Type::Double], false), None),
        b("floor", sig(Type::Double, vec![Type::Double], false), None),
        b("ceil", sig(Type::Double, vec![Type::Double], false), None),
        b("sin", sig(Type::Double, vec![Type::Double], false), None),
        b("cos", sig(Type::Double, vec![Type::Double], false), None),
        b("tan", sig(Type::Double, vec![Type::Double], false), None),
        b("atan", sig(Type::Double, vec![Type::Double], false), None),
        b(
            "atan2",
            sig(Type::Double, vec![Type::Double, Type::Double], false),
            None,
        ),
        b(
            "pow",
            sig(Type::Double, vec![Type::Double, Type::Double], false),
            None,
        ),
        b("exp", sig(Type::Double, vec![Type::Double], false), None),
        b("log", sig(Type::Double, vec![Type::Double], false), None),
        b("log10", sig(Type::Double, vec![Type::Double], false), None),
        b("toupper", sig(Type::Int, vec![Type::Int], false), None),
        b("tolower", sig(Type::Int, vec![Type::Int], false), None),
        b("isdigit", sig(Type::Int, vec![Type::Int], false), None),
        b("isalpha", sig(Type::Int, vec![Type::Int], false), None),
        b("isspace", sig(Type::Int, vec![Type::Int], false), None),
    ]
}

/// Looks up the effect class of a modelled external by name.
pub fn extern_effect(name: &str) -> Option<ExternEffect> {
    builtins()
        .into_iter()
        .find(|b| b.name == name)
        .map(|b| b.effect)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_is_heap_allocator() {
        assert_eq!(extern_effect("malloc"), Some(ExternEffect::ReturnsHeap));
        assert_eq!(extern_effect("calloc"), Some(ExternEffect::ReturnsHeap));
    }

    #[test]
    fn strcpy_returns_first_arg() {
        assert_eq!(extern_effect("strcpy"), Some(ExternEffect::ReturnsFirstArg));
        assert_eq!(extern_effect("memcpy"), Some(ExternEffect::ReturnsFirstArg));
    }

    #[test]
    fn unknown_function_is_not_modelled() {
        assert_eq!(extern_effect("not_a_builtin"), None);
    }

    #[test]
    fn no_duplicate_names() {
        let all = builtins();
        let mut names: Vec<_> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
