//! Hand-written lexer for the C subset.
//!
//! Supports line (`//`) and block (`/* */`) comments, decimal / hex /
//! octal integer literals, floating-point literals, character and string
//! literals with the common escape sequences, and all operators used by
//! the subset grammar.

use crate::error::{lex_err, Result};
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Tokenizes `source` into a vector of tokens terminated by [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`crate::FrontendError`] on malformed literals, unterminated
/// comments/strings, or characters outside the subset.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.mark();
            let Some(c) = self.peek() else {
                out.push(Token::new(TokenKind::Eof, self.span_from(start)));
                return Ok(out);
            };
            let kind = match c {
                b'0'..=b'9' => self.number()?,
                b'\'' => self.char_lit()?,
                b'"' => self.string_lit()?,
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident_or_keyword(),
                _ => self.punct()?,
            };
            out.push(Token::new(kind, self.span_from(start)));
        }
    }

    fn mark(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn span_from(&self, (start, line, col): (usize, u32, u32)) -> Span {
        Span::new(start, self.pos, line, col)
    }

    fn here(&self) -> Span {
        Span::new(self.pos, self.pos + 1, self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let open = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => return Err(lex_err(open, "unterminated block comment")),
                        }
                    }
                }
                // Preprocessor lines are not supported; skip them so that
                // benchmark files may carry a leading comment banner like
                // `#include` guards without failing. Each `#...` line is
                // ignored wholesale.
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident_or_keyword(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'_' || c.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        match Keyword::from_str(text) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(text.to_owned()),
        }
    }

    fn number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        let start_span = self.here();
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                self.bump();
            }
            if self.pos == hex_start {
                return Err(lex_err(
                    start_span,
                    "hex literal requires at least one digit",
                ));
            }
            let text = std::str::from_utf8(&self.src[hex_start..self.pos]).expect("ascii");
            let value = i64::from_str_radix(text, 16)
                .map_err(|_| lex_err(start_span, "hex literal out of range"))?;
            self.skip_int_suffix();
            return Ok(TokenKind::IntLit(value));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let is_float = matches!(self.peek(), Some(b'.'))
            && matches!(self.peek2(), Some(c) if c.is_ascii_digit())
            || matches!(self.peek(), Some(b'e') | Some(b'E'));
        if is_float {
            if self.eat(b'.') {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                self.bump();
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
            let value: f64 = text
                .parse()
                .map_err(|_| lex_err(start_span, format!("malformed float literal `{text}`")))?;
            if self.eat(b'f') || self.eat(b'F') || self.eat(b'l') || self.eat(b'L') {
                // float suffix, ignored
            }
            return Ok(TokenKind::FloatLit(value));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        // A leading 0 means octal in C.
        let value = if text.len() > 1 && text.starts_with('0') {
            i64::from_str_radix(&text[1..], 8)
                .map_err(|_| lex_err(start_span, format!("malformed octal literal `{text}`")))?
        } else {
            text.parse::<i64>().map_err(|_| {
                lex_err(start_span, format!("integer literal out of range `{text}`"))
            })?
        };
        self.skip_int_suffix();
        Ok(TokenKind::IntLit(value))
    }

    fn skip_int_suffix(&mut self) {
        while matches!(
            self.peek(),
            Some(b'u') | Some(b'U') | Some(b'l') | Some(b'L')
        ) {
            self.bump();
        }
    }

    fn escape(&mut self) -> Result<i64> {
        let span = self.here();
        let Some(c) = self.bump() else {
            return Err(lex_err(span, "unterminated escape sequence"));
        };
        Ok(match c {
            b'n' => b'\n' as i64,
            b't' => b'\t' as i64,
            b'r' => b'\r' as i64,
            b'0' => 0,
            b'\\' => b'\\' as i64,
            b'\'' => b'\'' as i64,
            b'"' => b'"' as i64,
            b'a' => 7,
            b'b' => 8,
            b'f' => 12,
            b'v' => 11,
            other => {
                return Err(lex_err(
                    span,
                    format!("unknown escape `\\{}`", other as char),
                ));
            }
        })
    }

    fn char_lit(&mut self) -> Result<TokenKind> {
        let open = self.here();
        self.bump(); // opening quote
        let value = match self.bump() {
            Some(b'\\') => self.escape()?,
            Some(b'\'') => return Err(lex_err(open, "empty character literal")),
            Some(c) => c as i64,
            None => return Err(lex_err(open, "unterminated character literal")),
        };
        if !self.eat(b'\'') {
            return Err(lex_err(open, "unterminated character literal"));
        }
        Ok(TokenKind::CharLit(value))
    }

    fn string_lit(&mut self) -> Result<TokenKind> {
        let open = self.here();
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => {
                    let v = self.escape()?;
                    text.push(v as u8 as char);
                }
                Some(c) => text.push(c as char),
                None => return Err(lex_err(open, "unterminated string literal")),
            }
        }
        Ok(TokenKind::StrLit(text))
    }

    fn punct(&mut self) -> Result<TokenKind> {
        use Punct::*;
        let span = self.here();
        let c = self.bump().expect("caller checked non-eof");
        let p = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'.' => Dot,
            b'?' => Question,
            b':' => Colon,
            b'~' => Tilde,
            b'+' => {
                if self.eat(b'+') {
                    PlusPlus
                } else if self.eat(b'=') {
                    PlusAssign
                } else {
                    Plus
                }
            }
            b'-' => {
                if self.eat(b'-') {
                    MinusMinus
                } else if self.eat(b'=') {
                    MinusAssign
                } else if self.eat(b'>') {
                    Arrow
                } else {
                    Minus
                }
            }
            b'*' => {
                if self.eat(b'=') {
                    StarAssign
                } else {
                    Star
                }
            }
            b'/' => {
                if self.eat(b'=') {
                    SlashAssign
                } else {
                    Slash
                }
            }
            b'%' => {
                if self.eat(b'=') {
                    PercentAssign
                } else {
                    Percent
                }
            }
            b'&' => {
                if self.eat(b'&') {
                    AndAnd
                } else if self.eat(b'=') {
                    AmpAssign
                } else {
                    Amp
                }
            }
            b'|' => {
                if self.eat(b'|') {
                    OrOr
                } else if self.eat(b'=') {
                    PipeAssign
                } else {
                    Pipe
                }
            }
            b'^' => {
                if self.eat(b'=') {
                    CaretAssign
                } else {
                    Caret
                }
            }
            b'!' => {
                if self.eat(b'=') {
                    Ne
                } else {
                    Bang
                }
            }
            b'=' => {
                if self.eat(b'=') {
                    Eq
                } else {
                    Assign
                }
            }
            b'<' => {
                if self.eat(b'<') {
                    if self.eat(b'=') {
                        ShlAssign
                    } else {
                        Shl
                    }
                } else if self.eat(b'=') {
                    Le
                } else {
                    Lt
                }
            }
            b'>' => {
                if self.eat(b'>') {
                    if self.eat(b'=') {
                        ShrAssign
                    } else {
                        Shr
                    }
                } else if self.eat(b'=') {
                    Ge
                } else {
                    Gt
                }
            }
            other => {
                return Err(lex_err(
                    span,
                    format!("unexpected character `{}`", other as char),
                ));
            }
        };
        Ok(TokenKind::Punct(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lex_simple_declaration() {
        let k = kinds("int *p;");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Punct(Punct::Star),
                TokenKind::Ident("p".into()),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("42 0x1f 017 3.5 1e3 2.5e-2"),
            vec![
                TokenKind::IntLit(42),
                TokenKind::IntLit(31),
                TokenKind::IntLit(15),
                TokenKind::FloatLit(3.5),
                TokenKind::FloatLit(1000.0),
                TokenKind::FloatLit(0.025),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_int_suffixes() {
        assert_eq!(
            kinds("10L 10UL 7u")[..3],
            [
                TokenKind::IntLit(10),
                TokenKind::IntLit(10),
                TokenKind::IntLit(7)
            ]
        );
    }

    #[test]
    fn lex_char_and_string() {
        assert_eq!(
            kinds(r#"'a' '\n' "hi\tthere""#),
            vec![
                TokenKind::CharLit('a' as i64),
                TokenKind::CharLit('\n' as i64),
                TokenKind::StrLit("hi\tthere".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_comments_and_preprocessor_lines_are_skipped() {
        let k = kinds("#include <stdio.h>\n// line\n/* block\n comment */ x");
        assert_eq!(k, vec![TokenKind::Ident("x".into()), TokenKind::Eof]);
    }

    #[test]
    fn lex_compound_operators() {
        use Punct::*;
        let k = kinds("-> ++ -- << >> <<= >>= <= >= == != && || += &=");
        let expect = [
            Arrow, PlusPlus, MinusMinus, Shl, Shr, ShlAssign, ShrAssign, Le, Ge, Eq, Ne, AndAnd,
            OrOr, PlusAssign, AmpAssign,
        ];
        for (got, want) in k.iter().zip(expect.iter()) {
            assert_eq!(got, &TokenKind::Punct(*want));
        }
    }

    #[test]
    fn lex_tracks_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn lex_errors() {
        assert!(lex("'").is_err());
        assert!(lex("\"abc").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("@").is_err());
        assert!(lex("'ab'").is_err());
        assert!(lex("0x").is_err());
    }

    #[test]
    fn lex_empty_input_gives_eof() {
        let toks = lex("").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Eof);
    }
}
