//! # pta-cfront — C front end for the PTA points-to analysis
//!
//! A from-scratch lexer, parser, and semantic analyzer for the C subset
//! analysed by the PLDI 1994 points-to paper (Emami, Ghiya, Hendren).
//! The subset is deliberately large: multi-level pointers, the
//! address-of operator, structs/unions, arrays (including arrays of
//! function pointers), full declarator syntax, all structured control
//! flow, `enum` constants, and calls through function pointers. `goto`,
//! `typedef`, and the preprocessor are excluded (see `DESIGN.md`).
//!
//! The typical entry point is [`frontend`], which runs all phases:
//!
//! ```
//! let program = pta_cfront::frontend(
//!     "int g; int main(void) { int *p; p = &g; return *p; }",
//! )?;
//! assert!(program.main().is_some());
//! # Ok::<(), pta_cfront::FrontendError>(())
//! ```

pub mod ast;
pub mod builtins;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod span;
pub mod token;
pub mod types;

pub use ast::Program;
pub use error::{FrontendError, Phase, Result};
pub use span::Span;

/// Runs the full front end (lex, parse, sema) over one translation unit.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error.
pub fn frontend(source: &str) -> Result<Program> {
    let mut program = parser::parse(source)?;
    sema::analyze(&mut program)?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_end_to_end() {
        let p = frontend(
            "struct pair { int *a; int *b; };
             int x, y;
             struct pair make(void) { struct pair p; p.a = &x; p.b = &y; return p; }
             int main(void) { struct pair q; q = make(); return *q.a; }",
        )
        .expect("frontend ok");
        assert!(p.main().is_some());
        assert!(p.structs.by_tag("pair").is_some());
    }

    #[test]
    fn frontend_reports_parse_errors() {
        let e = frontend("int main( {").unwrap_err();
        assert_eq!(e.phase(), Phase::Parse);
    }

    #[test]
    fn frontend_reports_sema_errors() {
        let e = frontend("int main(void) { return undefined_var; }").unwrap_err();
        assert_eq!(e.phase(), Phase::Sema);
    }
}
