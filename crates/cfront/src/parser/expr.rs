//! Expression parsing with full C operator precedence.

use super::Parser;
use crate::ast::{BinaryOp, Expr, ExprKind, UnaryOp};
use crate::error::Result;
use crate::token::{Keyword, Punct, TokenKind};
use crate::types::Type;

impl Parser {
    /// Parses a full expression (including the comma operator).
    pub(crate) fn expression(&mut self) -> Result<Expr> {
        let mut e = self.assign_expr()?;
        while self.eat_punct(Punct::Comma) {
            let rhs = self.assign_expr()?;
            let span = e.span.to(rhs.span);
            e = Expr::new(ExprKind::Comma(Box::new(e), Box::new(rhs)), span);
        }
        Ok(e)
    }

    /// Parses an assignment expression (no top-level comma).
    pub(crate) fn assign_expr(&mut self) -> Result<Expr> {
        let lhs = self.conditional_expr()?;
        let op = match self.peek().kind {
            TokenKind::Punct(Punct::Assign) => Some(None),
            TokenKind::Punct(Punct::PlusAssign) => Some(Some(BinaryOp::Add)),
            TokenKind::Punct(Punct::MinusAssign) => Some(Some(BinaryOp::Sub)),
            TokenKind::Punct(Punct::StarAssign) => Some(Some(BinaryOp::Mul)),
            TokenKind::Punct(Punct::SlashAssign) => Some(Some(BinaryOp::Div)),
            TokenKind::Punct(Punct::PercentAssign) => Some(Some(BinaryOp::Rem)),
            TokenKind::Punct(Punct::AmpAssign) => Some(Some(BinaryOp::BitAnd)),
            TokenKind::Punct(Punct::PipeAssign) => Some(Some(BinaryOp::BitOr)),
            TokenKind::Punct(Punct::CaretAssign) => Some(Some(BinaryOp::BitXor)),
            TokenKind::Punct(Punct::ShlAssign) => Some(Some(BinaryOp::Shl)),
            TokenKind::Punct(Punct::ShrAssign) => Some(Some(BinaryOp::Shr)),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assign_expr()?; // right-associative
            let span = lhs.span.to(rhs.span);
            return Ok(Expr::new(
                ExprKind::Assign(Box::new(lhs), op, Box::new(rhs)),
                span,
            ));
        }
        Ok(lhs)
    }

    /// Parses a conditional (`?:`) expression.
    pub(crate) fn conditional_expr(&mut self) -> Result<Expr> {
        let cond = self.binary_expr(0)?;
        if self.eat_punct(Punct::Question) {
            let then = self.expression()?;
            self.expect_punct(Punct::Colon)?;
            let els = self.conditional_expr()?;
            let span = cond.span.to(els.span);
            return Ok(Expr::new(
                ExprKind::Cond(Box::new(cond), Box::new(then), Box::new(els)),
                span,
            ));
        }
        Ok(cond)
    }

    /// Precedence-climbing parser for binary operators.
    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.cast_expr()?;
        while let Some((op, prec)) = self.peek_binop() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<(BinaryOp, u8)> {
        use BinaryOp::*;
        let p = match self.peek().kind {
            TokenKind::Punct(p) => p,
            _ => return None,
        };
        Some(match p {
            Punct::OrOr => (LogOr, 1),
            Punct::AndAnd => (LogAnd, 2),
            Punct::Pipe => (BitOr, 3),
            Punct::Caret => (BitXor, 4),
            Punct::Amp => (BitAnd, 5),
            Punct::Eq => (Eq, 6),
            Punct::Ne => (Ne, 6),
            Punct::Lt => (Lt, 7),
            Punct::Gt => (Gt, 7),
            Punct::Le => (Le, 7),
            Punct::Ge => (Ge, 7),
            Punct::Shl => (Shl, 8),
            Punct::Shr => (Shr, 8),
            Punct::Plus => (Add, 9),
            Punct::Minus => (Sub, 9),
            Punct::Star => (Mul, 10),
            Punct::Slash => (Div, 10),
            Punct::Percent => (Rem, 10),
            _ => return None,
        })
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        let start = self.span();
        let op = match self.peek().kind {
            TokenKind::Punct(Punct::Minus) => Some(UnaryOp::Neg),
            TokenKind::Punct(Punct::Bang) => Some(UnaryOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnaryOp::BitNot),
            TokenKind::Punct(Punct::Amp) => Some(UnaryOp::AddrOf),
            TokenKind::Punct(Punct::Star) => Some(UnaryOp::Deref),
            TokenKind::Punct(Punct::PlusPlus) => Some(UnaryOp::PreInc),
            TokenKind::Punct(Punct::MinusMinus) => Some(UnaryOp::PreDec),
            TokenKind::Punct(Punct::Plus) => {
                self.bump();
                return self.unary_expr(); // unary plus is a no-op
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.cast_expr()?;
            let span = start.to(inner.span);
            return Ok(Expr::new(ExprKind::Unary(op, Box::new(inner)), span));
        }
        if self.peek().is_keyword(Keyword::Sizeof) {
            self.bump();
            if self.peek().is_punct(Punct::LParen) && self.peek_at(1).begins_type() {
                self.bump();
                let ty = self.type_name()?;
                let end = self.expect_punct(Punct::RParen)?;
                return Ok(Expr::new(ExprKind::SizeofTy(ty), start.to(end)));
            }
            let inner = self.unary_expr()?;
            let span = start.to(inner.span);
            return Ok(Expr::new(ExprKind::SizeofExpr(Box::new(inner)), span));
        }
        self.postfix_expr()
    }

    /// cast-expression: `( type ) cast-expression | unary-expression`.
    fn cast_expr(&mut self) -> Result<Expr> {
        let start = self.span();
        if self.peek().is_punct(Punct::LParen) && self.peek_at(1).begins_type() {
            self.bump();
            let ty = self.type_name()?;
            self.expect_punct(Punct::RParen)?;
            let inner = self.cast_expr()?;
            let span = start.to(inner.span);
            return Ok(Expr::new(ExprKind::Cast(ty, Box::new(inner)), span));
        }
        self.unary_expr()
    }

    /// Parses a type name (specifier + abstract declarator) as used in
    /// casts and `sizeof`.
    pub(crate) fn type_name(&mut self) -> Result<Type> {
        let base = self.type_specifier()?;
        let d = self.declarator()?;
        let (name, sp, ty) = d.apply(base);
        if name.is_some() {
            return Err(crate::error::parse_err(sp, "type name must be abstract"));
        }
        Ok(ty)
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            let start = e.span;
            match self.peek().kind {
                TokenKind::Punct(Punct::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.peek().is_punct(Punct::RParen) {
                        loop {
                            args.push(self.assign_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect_punct(Punct::RParen)?;
                    e = Expr::new(ExprKind::Call(Box::new(e), args), start.to(end));
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.expression()?;
                    let end = self.expect_punct(Punct::RBracket)?;
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), start.to(end));
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let (name, sp) = self.expect_ident()?;
                    e = Expr::new(ExprKind::Member(Box::new(e), name, false), start.to(sp));
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.bump();
                    let (name, sp) = self.expect_ident()?;
                    e = Expr::new(ExprKind::Member(Box::new(e), name, true), start.to(sp));
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    let sp = self.bump().span;
                    e = Expr::new(ExprKind::Unary(UnaryOp::PostInc, Box::new(e)), start.to(sp));
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    let sp = self.bump().span;
                    e = Expr::new(ExprKind::Unary(UnaryOp::PostDec, Box::new(e)), start.to(sp));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), t.span))
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), t.span))
            }
            TokenKind::CharLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::CharLit(v), t.span))
            }
            TokenKind::StrLit(ref s) => {
                self.bump();
                // Adjacent string literals concatenate.
                let mut text = s.clone();
                while let TokenKind::StrLit(next) = &self.peek().kind {
                    text.push_str(next);
                    self.bump();
                }
                Ok(Expr::new(ExprKind::StrLit(text), t.span))
            }
            TokenKind::Ident(ref name) => {
                self.bump();
                Ok(Expr::new(ExprKind::Ident(name.clone(), None), t.span))
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

impl crate::token::Token {
    /// True if this token can begin a type name (used to disambiguate
    /// casts/`sizeof(T)` from parenthesized expressions — sound because
    /// the subset has no `typedef`).
    pub(crate) fn begins_type(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Keyword(
                Keyword::Int
                    | Keyword::Char
                    | Keyword::Double
                    | Keyword::Float
                    | Keyword::Long
                    | Keyword::Short
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Void
                    | Keyword::Struct
                    | Keyword::Union
                    | Keyword::Enum
                    | Keyword::Const
                    | Keyword::Volatile
            )
        )
    }
}
