//! Statement parsing for the structured (goto-free) subset.

use super::Parser;
use crate::ast::{LocalDecl, Stmt, StmtKind, SwitchArm};
use crate::error::{parse_err, Result};
use crate::token::{Keyword, Punct, TokenKind};

impl Parser {
    /// Parses the statements of a `{ … }` block whose `{` has been
    /// consumed; consumes the closing `}`.
    pub(crate) fn block_stmts(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.unexpected("`}`"));
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    /// Parses one statement.
    pub(crate) fn statement(&mut self) -> Result<Stmt> {
        let start = self.span();
        // Local declaration?
        if self.at_type_start() {
            return self.local_declaration();
        }
        // Reject labels (goto-free subset): `ident :` not inside switch.
        if matches!(self.peek().kind, TokenKind::Ident(_)) && self.peek_at(1).is_punct(Punct::Colon)
        {
            return Err(parse_err(
                start,
                "labels/goto are not supported (structured subset)",
            ));
        }
        match self.peek().kind {
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                let stmts = self.block_stmts()?;
                Ok(Stmt::new(StmtKind::Block(stmts), start))
            }
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt::new(StmtKind::Empty, start))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let then = Box::new(self.statement()?);
                let els = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                Ok(Stmt::new(StmtKind::If(cond, then, els), start))
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt::new(StmtKind::While(cond, body), start))
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.statement()?);
                if !self.eat_keyword(Keyword::While) {
                    return Err(self.unexpected("`while` after `do` body"));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::new(StmtKind::DoWhile(body, cond), start))
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.peek().is_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::Semi)?;
                let cond = if self.peek().is_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if self.peek().is_punct(Punct::RParen) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt::new(StmtKind::For(init, cond, step, body), start))
            }
            TokenKind::Keyword(Keyword::Switch) => self.switch_statement(),
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::new(StmtKind::Break, start))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::new(StmtKind::Continue, start))
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.peek().is_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::new(StmtKind::Return(value), start))
            }
            _ => {
                let e = self.expression()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::new(StmtKind::Expr(e), start))
            }
        }
    }

    fn local_declaration(&mut self) -> Result<Stmt> {
        let start = self.span();
        let base = self.type_specifier()?;
        let mut decls = Vec::new();
        if self.eat_punct(Punct::Semi) {
            // Bare struct/enum declaration inside a function.
            return Ok(Stmt::new(StmtKind::Decl(decls), start));
        }
        loop {
            let d = self.declarator()?;
            let (name, sp, ty) = d.apply(base.clone());
            let Some(name) = name else {
                return Err(parse_err(sp, "local declaration must declare a name"));
            };
            if ty.is_func() {
                return Err(parse_err(
                    sp,
                    "local function declarations are not supported",
                ));
            }
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.initializer()?)
            } else {
                None
            };
            decls.push(LocalDecl {
                name,
                ty,
                init,
                local_id: None,
                span: sp,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt::new(StmtKind::Decl(decls), start))
    }

    fn switch_statement(&mut self) -> Result<Stmt> {
        let start = self.span();
        self.bump(); // switch
        self.expect_punct(Punct::LParen)?;
        let scrutinee = self.expression()?;
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::LBrace)?;
        let mut arms: Vec<SwitchArm> = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.unexpected("`}`"));
            }
            // One arm: one or more labels, then statements until the next
            // label or the closing brace.
            let arm_span = self.span();
            let mut labels = Vec::new();
            loop {
                if self.eat_keyword(Keyword::Case) {
                    labels.push(Some(self.const_expr()?));
                    self.expect_punct(Punct::Colon)?;
                } else if self.peek().is_keyword(Keyword::Default) {
                    self.bump();
                    labels.push(None);
                    self.expect_punct(Punct::Colon)?;
                } else {
                    break;
                }
            }
            if labels.is_empty() {
                return Err(parse_err(
                    self.span(),
                    "statement in switch body must be preceded by a case label",
                ));
            }
            let mut stmts = Vec::new();
            while !self.peek().is_keyword(Keyword::Case)
                && !self.peek().is_keyword(Keyword::Default)
                && !self.peek().is_punct(Punct::RBrace)
            {
                if self.at_eof() {
                    return Err(self.unexpected("`}`"));
                }
                stmts.push(self.statement()?);
            }
            arms.push(SwitchArm {
                labels,
                stmts,
                span: arm_span,
            });
        }
        Ok(Stmt::new(StmtKind::Switch(scrutinee, arms), start))
    }
}
