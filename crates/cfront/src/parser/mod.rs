//! Recursive-descent parser for the C subset.
//!
//! The grammar is standard C89 minus the preprocessor, `goto`/labels,
//! `typedef`, and K&R-style definitions. Declarators are fully general
//! (`int (*fparr[24])(void)` parses), which matters for the paper's
//! function-pointer benchmarks.

mod decl;
mod expr;
mod stmt;

use crate::ast::Program;
use crate::error::{parse_err, FrontendError, Result};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};
use std::collections::BTreeMap;

/// Parses a full translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(source: &str) -> Result<Program> {
    let tokens = lex(source)?;
    let mut parser = Parser::new(tokens);
    parser.translation_unit()?;
    Ok(parser.program)
}

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    pub(crate) program: Program,
    /// Enum constants, usable in constant expressions during parsing.
    pub(crate) enum_consts: BTreeMap<String, i64>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            program: Program::new(),
            enum_consts: BTreeMap::new(),
        }
    }

    fn translation_unit(&mut self) -> Result<()> {
        while !self.at_eof() {
            self.external_declaration()?;
        }
        self.program.enum_consts = std::mem::take(&mut self.enum_consts);
        Ok(())
    }

    // ----- token cursor helpers -------------------------------------------

    pub(crate) fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    pub(crate) fn peek_at(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    pub(crate) fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    pub(crate) fn span(&self) -> Span {
        self.peek().span
    }

    pub(crate) fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek().is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek().is_keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_punct(&mut self, p: Punct) -> Result<Span> {
        if self.peek().is_punct(p) {
            Ok(self.bump().span)
        } else {
            Err(self.unexpected(&format!("`{}`", p.as_str())))
        }
    }

    pub(crate) fn expect_ident(&mut self) -> Result<(String, Span)> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(s) => Ok((s, t.span)),
                    _ => unreachable!("peek matched TokenKind::Ident"),
                }
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    pub(crate) fn unexpected(&self, wanted: &str) -> FrontendError {
        parse_err(
            self.span(),
            format!("expected {wanted}, found {}", self.peek().kind),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::types::Type;

    fn p(src: &str) -> Program {
        parse(src).expect("parse ok")
    }

    #[test]
    fn parse_empty_program() {
        let prog = p("");
        assert!(prog.functions.is_empty());
        assert!(prog.globals.is_empty());
    }

    #[test]
    fn parse_global_scalars_and_pointers() {
        let prog = p("int a; int *pa; int **ppa; char c; double d;");
        assert_eq!(prog.globals.len(), 5);
        assert_eq!(prog.globals[0].ty, Type::Int);
        assert_eq!(prog.globals[1].ty, Type::Int.ptr_to());
        assert_eq!(prog.globals[2].ty, Type::Int.ptr_to().ptr_to());
        assert_eq!(prog.globals[3].ty, Type::Char);
        assert_eq!(prog.globals[4].ty, Type::Double);
    }

    #[test]
    fn parse_multi_declarator_line() {
        let prog = p("int a, *b, c[4];");
        assert_eq!(prog.globals.len(), 3);
        assert_eq!(prog.globals[1].ty, Type::Int.ptr_to());
        assert_eq!(
            prog.globals[2].ty,
            Type::Array(Box::new(Type::Int), Some(4))
        );
    }

    #[test]
    fn parse_function_pointer_declarator() {
        let prog = p("int (*fp)(int, char*);");
        let ty = &prog.globals[0].ty;
        let Type::Pointer(inner) = ty else {
            panic!("expected pointer, got {ty:?}")
        };
        let Type::Func(sig) = inner.as_ref() else {
            panic!("expected function")
        };
        assert_eq!(sig.ret, Type::Int);
        assert_eq!(sig.params, vec![Type::Int, Type::Char.ptr_to()]);
        assert!(!sig.variadic);
    }

    #[test]
    fn parse_array_of_function_pointers() {
        let prog = p("double (*table[24])(void);");
        let Type::Array(elem, Some(24)) = &prog.globals[0].ty else {
            panic!("expected array[24]")
        };
        let Type::Pointer(inner) = elem.as_ref() else {
            panic!("expected pointer")
        };
        assert!(inner.is_func());
    }

    #[test]
    fn parse_struct_definition_and_use() {
        let prog = p("struct node { int val; struct node *next; }; struct node *head;");
        let id = prog.structs.by_tag("node").unwrap();
        let def = prog.structs.def(id);
        assert!(def.complete);
        assert_eq!(def.fields.len(), 2);
        assert_eq!(prog.globals[0].ty, Type::Struct(id).ptr_to());
    }

    #[test]
    fn parse_enum_constants() {
        let prog = p("enum color { RED, GREEN = 5, BLUE }; int x[BLUE];");
        assert_eq!(prog.enum_consts["RED"], 0);
        assert_eq!(prog.enum_consts["GREEN"], 5);
        assert_eq!(prog.enum_consts["BLUE"], 6);
        assert_eq!(
            prog.globals[0].ty,
            Type::Array(Box::new(Type::Int), Some(6))
        );
    }

    #[test]
    fn parse_function_definition() {
        let prog = p("int add(int a, int b) { return a + b; }");
        let (_, f) = prog.function("add").unwrap();
        assert!(f.is_definition());
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::Int);
        assert_eq!(f.body.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn parse_prototype_then_definition_merges() {
        let prog = p("int f(int); int f(int x) { return x; }");
        assert_eq!(prog.functions.iter().filter(|f| f.name == "f").count(), 1);
        assert!(prog.function("f").unwrap().1.is_definition());
    }

    #[test]
    fn parse_variadic_prototype() {
        let prog = p("int printf(char *fmt, ...);");
        assert!(prog.function("printf").unwrap().1.variadic);
    }

    #[test]
    fn parse_control_flow_statements() {
        let prog = p(r#"
            int main(void) {
                int i, s;
                s = 0;
                for (i = 0; i < 10; i++) { s += i; }
                while (s > 0) { s--; if (s == 3) break; else continue; }
                do { s++; } while (s < 2);
                switch (s) { case 1: s = 2; break; case 2: case 3: s = 4; break; default: s = 0; }
                return s;
            }
        "#);
        let f = prog.function("main").unwrap().1;
        assert!(f.is_definition());
        let body = f.body.as_ref().unwrap();
        assert!(body.iter().any(|s| matches!(s.kind, StmtKind::Switch(..))));
        assert!(body.iter().any(|s| matches!(s.kind, StmtKind::For(..))));
        assert!(body.iter().any(|s| matches!(s.kind, StmtKind::DoWhile(..))));
    }

    #[test]
    fn parse_switch_arm_structure() {
        let prog =
            p("int f(int x){ switch(x){ case 1: case 2: x=1; break; default: x=0; } return x; }");
        let f = prog.function("f").unwrap().1;
        let body = f.body.as_ref().unwrap();
        let StmtKind::Switch(_, arms) = &body[0].kind else {
            panic!("expected switch")
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].labels, vec![Some(1), Some(2)]);
        assert_eq!(arms[1].labels, vec![None]);
    }

    #[test]
    fn parse_expressions_with_precedence() {
        let prog = p("int f(int a, int b){ return a + b * 2 == 0 ? a : b; }");
        let f = prog.function("f").unwrap().1;
        let StmtKind::Return(Some(e)) = &f.body.as_ref().unwrap()[0].kind else {
            panic!("expected return expr")
        };
        let ExprKind::Cond(c, _, _) = &e.kind else {
            panic!("ternary at top")
        };
        let ExprKind::Binary(BinaryOp::Eq, lhs, _) = &c.kind else {
            panic!("== below ?:")
        };
        assert!(matches!(lhs.kind, ExprKind::Binary(BinaryOp::Add, _, _)));
    }

    #[test]
    fn parse_casts_and_sizeof() {
        let prog = p("int f(void){ int *p; p = (int*) 0; return sizeof(int*) + sizeof *p; }");
        assert!(prog.function("f").unwrap().1.is_definition());
    }

    #[test]
    fn parse_member_and_index_chains() {
        let prog = p("struct s { int a[4]; struct s *next; };
             int f(struct s *p){ return p->next->a[2] + (*p).a[0]; }");
        assert!(prog.function("f").unwrap().1.is_definition());
    }

    #[test]
    fn parse_global_initializers() {
        let prog = p("int a = 3; int t[3] = {1, 2, 3}; int *p = 0;");
        assert!(matches!(prog.globals[0].init, Some(Init::Expr(_))));
        let Some(Init::List(items)) = &prog.globals[1].init else {
            panic!("list")
        };
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn parse_error_reports_location() {
        let err = parse("int main( { }").unwrap_err();
        assert_eq!(err.phase(), crate::error::Phase::Parse);
    }

    #[test]
    fn parse_rejects_goto_free_subset_violations() {
        assert!(parse("int f(void){ lbl: return 0; }").is_err());
    }

    #[test]
    fn parse_storage_classes_ignored() {
        let prog = p("static int counter; extern int other; static int helper(void) { return 1; }");
        assert_eq!(prog.globals.len(), 2);
        assert!(prog.function("helper").unwrap().1.is_definition());
    }
}
