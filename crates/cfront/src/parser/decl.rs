//! Declaration parsing: type specifiers, declarators, struct/enum
//! definitions, globals, prototypes, and function definitions.

use super::Parser;
use crate::ast::{Expr, ExprKind, Function, Global, Init, Param, UnaryOp};
use crate::error::{parse_err, Result};
use crate::span::Span;
use crate::token::{Keyword, Punct, TokenKind};
use crate::types::{Field, FuncSig, Type};

/// A parsed declarator: the shape of the declaration around the name.
#[derive(Debug, Clone)]
pub(crate) enum Declarator {
    /// The declared name (or `None` for an abstract declarator).
    Name(Option<String>, Span),
    /// `* D`
    Ptr(Box<Declarator>),
    /// `D [n]`
    Array(Box<Declarator>, Option<u64>),
    /// `D (params)`
    Func(Box<Declarator>, Vec<Param>, bool),
}

impl Declarator {
    /// Applies the declarator to a base type, producing the declared
    /// name and its full type.
    pub(crate) fn apply(self, base: Type) -> (Option<String>, Span, Type) {
        match self {
            Declarator::Name(n, sp) => (n, sp, base),
            Declarator::Ptr(inner) => inner.apply(base.ptr_to()),
            Declarator::Array(inner, n) => inner.apply(Type::Array(Box::new(base), n)),
            Declarator::Func(inner, params, variadic) => {
                let sig = FuncSig {
                    ret: base,
                    params: params.iter().map(|p| p.ty.clone()).collect(),
                    variadic,
                };
                inner.apply(Type::Func(Box::new(sig)))
            }
        }
    }

    /// Recognizes a declarator that *declares a function*: the
    /// derivation closest to the name is `Func`. Handles pointer
    /// returns (`int *f(void)`) and function-pointer returns
    /// (`void (*pick(void))(void)`). Returns the name, its span, and
    /// the named parameters of the innermost function derivation.
    fn as_function_decl(&self) -> Option<(&str, Span, &[Param])> {
        match self {
            Declarator::Name(..) => None,
            Declarator::Func(inner, params, _) => {
                if let Declarator::Name(Some(name), sp) = inner.as_ref() {
                    Some((name, *sp, params))
                } else {
                    inner.as_function_decl()
                }
            }
            Declarator::Ptr(inner) | Declarator::Array(inner, _) => inner.as_function_decl(),
        }
    }
}

impl Parser {
    /// True if the current token can begin a type specifier.
    pub(crate) fn at_type_start(&self) -> bool {
        matches!(
            self.peek().kind,
            TokenKind::Keyword(
                Keyword::Int
                    | Keyword::Char
                    | Keyword::Double
                    | Keyword::Float
                    | Keyword::Long
                    | Keyword::Short
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Void
                    | Keyword::Struct
                    | Keyword::Union
                    | Keyword::Enum
                    | Keyword::Const
                    | Keyword::Volatile
            )
        )
    }

    fn skip_qualifiers(&mut self) {
        while self.eat_keyword(Keyword::Const)
            || self.eat_keyword(Keyword::Volatile)
            || self.eat_keyword(Keyword::Register)
        {}
    }

    fn skip_storage_class(&mut self) {
        while self.eat_keyword(Keyword::Static) || self.eat_keyword(Keyword::Extern) {}
    }

    /// Parses a type specifier (`int`, `unsigned long`, `struct s`,
    /// `enum e { … }`, …).
    pub(crate) fn type_specifier(&mut self) -> Result<Type> {
        self.skip_qualifiers();
        if self.peek().is_keyword(Keyword::Struct) || self.peek().is_keyword(Keyword::Union) {
            return self.struct_specifier();
        }
        if self.peek().is_keyword(Keyword::Enum) {
            return self.enum_specifier();
        }
        // Collect a run of arithmetic type keywords and normalize.
        let mut saw_void = false;
        let mut saw_char = false;
        let mut saw_float = false;
        let mut saw_int_like = false;
        let mut any = false;
        while let TokenKind::Keyword(kw) = self.peek().kind {
            match kw {
                Keyword::Void => saw_void = true,
                Keyword::Char => saw_char = true,
                Keyword::Double | Keyword::Float => saw_float = true,
                Keyword::Int
                | Keyword::Long
                | Keyword::Short
                | Keyword::Unsigned
                | Keyword::Signed => saw_int_like = true,
                Keyword::Const | Keyword::Volatile | Keyword::Register => {}
                _ => break,
            }
            any = true;
            self.bump();
        }
        if !any {
            return Err(self.unexpected("a type specifier"));
        }
        self.skip_qualifiers();
        Ok(if saw_void {
            Type::Void
        } else if saw_float {
            Type::Double
        } else if saw_char && !saw_int_like {
            Type::Char
        } else {
            Type::Int
        })
    }

    fn struct_specifier(&mut self) -> Result<Type> {
        let is_union = self.peek().is_keyword(Keyword::Union);
        self.bump(); // struct / union
        let tag = match &self.peek().kind {
            TokenKind::Ident(_) => Some(self.expect_ident()?),
            _ => None,
        };
        if self.eat_punct(Punct::LBrace) {
            let fields = self.struct_fields()?;
            match tag {
                Some((name, sp)) => {
                    let id = self.program.structs.declare(&name, is_union);
                    if !self.program.structs.complete(id, fields) {
                        return Err(parse_err(sp, format!("redefinition of struct `{name}`")));
                    }
                    Ok(Type::Struct(id))
                }
                None => Ok(Type::Struct(
                    self.program.structs.add_anon(is_union, fields),
                )),
            }
        } else {
            match tag {
                Some((name, _)) => Ok(Type::Struct(self.program.structs.declare(&name, is_union))),
                None => Err(self.unexpected("a struct tag or `{`")),
            }
        }
    }

    fn struct_fields(&mut self) -> Result<Vec<Field>> {
        let mut fields = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            let base = self.type_specifier()?;
            loop {
                let d = self.declarator()?;
                let (name, sp, ty) = d.apply(base.clone());
                let Some(name) = name else {
                    return Err(parse_err(sp, "struct field must be named"));
                };
                if fields.iter().any(|f: &Field| f.name == name) {
                    return Err(parse_err(sp, format!("duplicate field `{name}`")));
                }
                fields.push(Field { name, ty });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::Semi)?;
        }
        Ok(fields)
    }

    fn enum_specifier(&mut self) -> Result<Type> {
        self.bump(); // enum
        if matches!(self.peek().kind, TokenKind::Ident(_)) {
            self.expect_ident()?; // tag, unused — enums are just ints
        }
        if self.eat_punct(Punct::LBrace) {
            let mut next = 0i64;
            loop {
                if self.eat_punct(Punct::RBrace) {
                    break;
                }
                let (name, _) = self.expect_ident()?;
                if self.eat_punct(Punct::Assign) {
                    next = self.const_expr()?;
                }
                self.enum_consts.insert(name, next);
                next += 1;
                if !self.eat_punct(Punct::Comma) {
                    self.expect_punct(Punct::RBrace)?;
                    break;
                }
            }
        }
        Ok(Type::Int)
    }

    /// Parses a (possibly abstract) declarator.
    pub(crate) fn declarator(&mut self) -> Result<Declarator> {
        if self.eat_punct(Punct::Star) {
            self.skip_qualifiers();
            return Ok(Declarator::Ptr(Box::new(self.declarator()?)));
        }
        self.direct_declarator()
    }

    fn direct_declarator(&mut self) -> Result<Declarator> {
        let mut d = if self.peek().is_punct(Punct::LParen) && self.paren_is_declarator() {
            self.bump(); // (
            let inner = self.declarator()?;
            self.expect_punct(Punct::RParen)?;
            inner
        } else if matches!(self.peek().kind, TokenKind::Ident(_)) {
            let (name, sp) = self.expect_ident()?;
            Declarator::Name(Some(name), sp)
        } else {
            Declarator::Name(None, self.span())
        };
        loop {
            if self.eat_punct(Punct::LBracket) {
                let size = if self.peek().is_punct(Punct::RBracket) {
                    None
                } else {
                    let v = self.const_expr()?;
                    if v < 0 {
                        return Err(parse_err(self.span(), "array size must be non-negative"));
                    }
                    Some(v as u64)
                };
                self.expect_punct(Punct::RBracket)?;
                d = Declarator::Array(Box::new(d), size);
            } else if self.peek().is_punct(Punct::LParen) {
                self.bump();
                let (params, variadic) = self.param_list()?;
                d = Declarator::Func(Box::new(d), params, variadic);
            } else {
                break;
            }
        }
        Ok(d)
    }

    /// Disambiguates `(` in a direct declarator: inner declarator vs a
    /// parameter list of an abstract function declarator. Without
    /// typedefs an identifier or `*` or a nested `(` means declarator.
    fn paren_is_declarator(&self) -> bool {
        matches!(
            self.peek_at(1).kind,
            TokenKind::Punct(Punct::Star) | TokenKind::Ident(_) | TokenKind::Punct(Punct::LParen)
        )
    }

    fn param_list(&mut self) -> Result<(Vec<Param>, bool)> {
        if self.eat_punct(Punct::RParen) {
            // `()` — unspecified parameters; treat as variadic.
            return Ok((Vec::new(), true));
        }
        // `(void)`
        if self.peek().is_keyword(Keyword::Void) && self.peek_at(1).is_punct(Punct::RParen) {
            self.bump();
            self.bump();
            return Ok((Vec::new(), false));
        }
        let mut params = Vec::new();
        let mut variadic = false;
        loop {
            if self.eat_punct(Punct::Dot) {
                self.expect_punct(Punct::Dot)?;
                self.expect_punct(Punct::Dot)?;
                variadic = true;
                break;
            }
            let base = self.type_specifier()?;
            let d = self.declarator()?;
            let (name, sp, ty) = d.apply(base);
            // Parameters of array/function type decay.
            let ty = ty.decay();
            params.push(Param {
                name: name.unwrap_or_default(),
                ty,
                span: sp,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        Ok((params, variadic))
    }

    /// Parses one external declaration: a struct/enum declaration, a
    /// global variable line, a prototype, or a function definition.
    pub(crate) fn external_declaration(&mut self) -> Result<()> {
        self.skip_storage_class();
        let base = self.type_specifier()?;
        self.skip_storage_class();
        if self.eat_punct(Punct::Semi) {
            return Ok(()); // bare `struct s {...};` or `enum {...};`
        }
        let first = self.declarator()?;
        // Function definition?
        if first.as_function_decl().is_some() && self.peek().is_punct(Punct::LBrace) {
            return self.function_definition(base, first);
        }
        // Otherwise: prototypes or globals, comma-separated.
        self.finish_declaration_line(base, first)
    }

    fn function_definition(&mut self, base: Type, d: Declarator) -> Result<()> {
        let (name, sp, params) = d
            .as_function_decl()
            .expect("caller checked function declarator");
        let params = params.to_vec();
        let (name, sp) = (name.to_owned(), sp);
        // The full declarator applied to the base yields the function's
        // type (including pointer / function-pointer returns).
        let (_, _, full_ty) = d.apply(base);
        let Type::Func(sig) = full_ty else {
            return Err(parse_err(
                sp,
                format!("`{name}` does not declare a function"),
            ));
        };
        for p in &params {
            if p.name.is_empty() {
                return Err(parse_err(
                    sp,
                    format!("unnamed parameter in definition of `{name}`"),
                ));
            }
        }
        self.expect_punct(Punct::LBrace)?;
        let body = self.block_stmts()?;
        let func = Function {
            name: name.clone(),
            ret: sig.ret,
            params,
            variadic: sig.variadic,
            body: Some(body),
            locals: Vec::new(),
            span: sp,
        };
        self.add_function(func, sp)
    }

    fn finish_declaration_line(&mut self, base: Type, first: Declarator) -> Result<()> {
        let mut d = first;
        loop {
            let (name, sp, ty) = d.apply(base.clone());
            let Some(name) = name else {
                return Err(parse_err(sp, "declaration must declare a name"));
            };
            if let Type::Func(sig) = &ty {
                // Prototype.
                let func = Function {
                    name: name.clone(),
                    ret: sig.ret.clone(),
                    params: sig
                        .params
                        .iter()
                        .map(|t| Param {
                            name: String::new(),
                            ty: t.clone(),
                            span: sp,
                        })
                        .collect(),
                    variadic: sig.variadic,
                    body: None,
                    locals: Vec::new(),
                    span: sp,
                };
                self.add_function(func, sp)?;
            } else {
                let init = if self.eat_punct(Punct::Assign) {
                    Some(self.initializer()?)
                } else {
                    None
                };
                self.add_global(
                    Global {
                        name,
                        ty,
                        init,
                        span: sp,
                    },
                    sp,
                )?;
            }
            if !self.eat_punct(Punct::Comma) {
                break;
            }
            d = self.declarator()?;
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    fn add_function(&mut self, func: Function, sp: Span) -> Result<()> {
        if let Some(pos) = self
            .program
            .functions
            .iter()
            .position(|f| f.name == func.name)
        {
            let existing = &self.program.functions[pos];
            if existing.is_definition() && func.is_definition() {
                return Err(parse_err(
                    sp,
                    format!("redefinition of function `{}`", func.name),
                ));
            }
            if func.is_definition() {
                self.program.functions[pos] = func;
            }
            return Ok(());
        }
        self.program.functions.push(func);
        Ok(())
    }

    fn add_global(&mut self, g: Global, sp: Span) -> Result<()> {
        if let Some(pos) = self.program.globals.iter().position(|x| x.name == g.name) {
            let existing = &mut self.program.globals[pos];
            if existing.init.is_some() && g.init.is_some() {
                return Err(parse_err(
                    sp,
                    format!("redefinition of global `{}`", g.name),
                ));
            }
            if g.init.is_some() {
                existing.init = g.init;
            }
            return Ok(());
        }
        if self.program.functions.iter().any(|f| f.name == g.name) {
            return Err(parse_err(
                sp,
                format!("`{}` redeclared as a variable", g.name),
            ));
        }
        self.program.globals.push(g);
        Ok(())
    }

    /// Parses an initializer (scalar expression or brace list).
    pub(crate) fn initializer(&mut self) -> Result<Init> {
        if self.eat_punct(Punct::LBrace) {
            let mut items = Vec::new();
            loop {
                if self.eat_punct(Punct::RBrace) {
                    break;
                }
                items.push(self.initializer()?);
                if !self.eat_punct(Punct::Comma) {
                    self.expect_punct(Punct::RBrace)?;
                    break;
                }
            }
            Ok(Init::List(items))
        } else {
            Ok(Init::Expr(self.assign_expr()?))
        }
    }

    // ----- constant expressions -------------------------------------------

    /// Parses and folds an integer constant expression (used for array
    /// sizes, enum values, and case labels).
    pub(crate) fn const_expr(&mut self) -> Result<i64> {
        let e = self.conditional_expr()?;
        self.fold_const(&e)
    }

    pub(crate) fn fold_const(&self, e: &Expr) -> Result<i64> {
        use crate::ast::BinaryOp::*;
        match &e.kind {
            ExprKind::IntLit(v) | ExprKind::CharLit(v) => Ok(*v),
            ExprKind::Ident(name, _) => self
                .enum_consts
                .get(name)
                .copied()
                .ok_or_else(|| parse_err(e.span, format!("`{name}` is not a constant"))),
            ExprKind::Unary(UnaryOp::Neg, x) => Ok(-self.fold_const(x)?),
            ExprKind::Unary(UnaryOp::Not, x) => Ok((self.fold_const(x)? == 0) as i64),
            ExprKind::Unary(UnaryOp::BitNot, x) => Ok(!self.fold_const(x)?),
            ExprKind::Binary(op, a, b) => {
                let (a, b) = (self.fold_const(a)?, self.fold_const(b)?);
                Ok(match op {
                    Add => a.wrapping_add(b),
                    Sub => a.wrapping_sub(b),
                    Mul => a.wrapping_mul(b),
                    Div => {
                        if b == 0 {
                            return Err(parse_err(e.span, "division by zero in constant"));
                        }
                        a / b
                    }
                    Rem => {
                        if b == 0 {
                            return Err(parse_err(e.span, "division by zero in constant"));
                        }
                        a % b
                    }
                    Shl => a.wrapping_shl(b as u32),
                    Shr => a.wrapping_shr(b as u32),
                    Lt => (a < b) as i64,
                    Gt => (a > b) as i64,
                    Le => (a <= b) as i64,
                    Ge => (a >= b) as i64,
                    Eq => (a == b) as i64,
                    Ne => (a != b) as i64,
                    BitAnd => a & b,
                    BitOr => a | b,
                    BitXor => a ^ b,
                    LogAnd => ((a != 0) && (b != 0)) as i64,
                    LogOr => ((a != 0) || (b != 0)) as i64,
                })
            }
            ExprKind::Cond(c, t, f) => {
                if self.fold_const(c)? != 0 {
                    self.fold_const(t)
                } else {
                    self.fold_const(f)
                }
            }
            ExprKind::SizeofTy(ty) => Ok(size_of_type(ty, &self.program.structs)),
            ExprKind::Cast(_, inner) => self.fold_const(inner),
            _ => Err(parse_err(e.span, "not a constant expression")),
        }
    }
}

pub(crate) use crate::types::size_of as size_of_type;
