//! Abstract syntax tree for the C subset.
//!
//! The parser produces an untyped tree; [`crate::sema`] resolves
//! identifiers (filling [`ExprKind::Ident`] resolutions), computes a
//! [`crate::types::Type`] for every expression, and registers the
//! flattened, uniquely-named local list of every function.

use crate::span::Span;
use crate::types::{StructTable, Type};
use std::fmt;

/// Index of a global variable in [`Program::globals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

/// Index of a function in [`Program::functions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Index of a local variable in [`Function::locals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalId(pub u32);

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for LocalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-e`
    Neg,
    /// `!e`
    Not,
    /// `~e`
    BitNot,
    /// `&e`
    AddrOf,
    /// `*e`
    Deref,
    /// `++e`
    PreInc,
    /// `--e`
    PreDec,
    /// `e++`
    PostInc,
    /// `e--`
    PostDec,
}

/// Binary operators (excluding assignment, handled by [`ExprKind::Assign`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitOr,
    BitXor,
    LogAnd,
    LogOr,
}

impl BinaryOp {
    /// True for comparison operators (result is `int`).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Lt | BinaryOp::Gt | BinaryOp::Le | BinaryOp::Ge | BinaryOp::Eq | BinaryOp::Ne
        )
    }

    /// True for the short-circuiting logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::LogAnd | BinaryOp::LogOr)
    }
}

/// What an identifier refers to, filled in by semantic analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// A local variable of the enclosing function.
    Local(LocalId),
    /// The `n`-th parameter of the enclosing function.
    Param(u32),
    /// A global variable.
    Global(GlobalId),
    /// A function designator.
    Func(FuncId),
    /// An `enum` constant with the given value.
    EnumConst(i64),
}

/// An expression with its source span and (after sema) its type.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
    /// Type computed by semantic analysis (`None` before sema runs).
    pub ty: Option<Type>,
}

impl Expr {
    /// Creates an untyped expression.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr {
            kind,
            span,
            ty: None,
        }
    }

    /// The type of this expression.
    ///
    /// # Panics
    ///
    /// Panics if semantic analysis has not run.
    pub fn ty(&self) -> &Type {
        self.ty
            .as_ref()
            .expect("expression type not computed; run sema first")
    }
}

/// Expression payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating literal.
    FloatLit(f64),
    /// Character literal.
    CharLit(i64),
    /// String literal.
    StrLit(String),
    /// An identifier, with its resolution once sema has run.
    Ident(String, Option<Resolution>),
    /// A unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `lhs = rhs` or compound `lhs op= rhs`.
    Assign(Box<Expr>, Option<BinaryOp>, Box<Expr>),
    /// `c ? t : e`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// A call; the callee may be any expression (function designator,
    /// function pointer, `*fp`, array element, struct field, …).
    Call(Box<Expr>, Vec<Expr>),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `base.field` (`arrow == false`) or `base->field` (`arrow == true`).
    Member(Box<Expr>, String, bool),
    /// `(ty) e`.
    Cast(Type, Box<Expr>),
    /// `sizeof(ty)`.
    SizeofTy(Type),
    /// `sizeof e`.
    SizeofExpr(Box<Expr>),
    /// `a, b`.
    Comma(Box<Expr>, Box<Expr>),
}

/// An initializer: a scalar expression or a brace-enclosed list.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// `= expr`
    Expr(Expr),
    /// `= { i0, i1, … }`
    List(Vec<Init>),
}

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Statement payload.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

impl Stmt {
    /// Creates a statement.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

/// One declarator of a local declaration statement.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDecl {
    /// Source-level name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional initializer.
    pub init: Option<Init>,
    /// Unique id assigned by sema.
    pub local_id: Option<LocalId>,
    /// Source location.
    pub span: Span,
}

/// One arm of a `switch`: one or more labels followed by statements.
/// Control falls through to the next arm unless the statements end the
/// arm (`break`, `return`, …) — fall-through is handled by the analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchArm {
    /// `case k:` values (`None` for `default:`), possibly several stacked.
    pub labels: Vec<Option<i64>>,
    /// Statements of the arm.
    pub stmts: Vec<Stmt>,
    /// Source location of the first label.
    pub span: Span,
}

/// Statement payloads. `goto` is excluded (see DESIGN.md).
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// An expression statement.
    Expr(Expr),
    /// A local declaration with one or more declarators.
    Decl(Vec<LocalDecl>),
    /// `if (c) then else?`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (c) body`.
    While(Expr, Box<Stmt>),
    /// `do body while (c);`.
    DoWhile(Box<Stmt>, Expr),
    /// `for (init; cond; step) body` — all three headers optional.
    For(Option<Expr>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `switch (e) { arms }` with an implicit default if absent.
    Switch(Expr, Vec<SwitchArm>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return e?;`
    Return(Option<Expr>),
    /// `{ … }`
    Block(Vec<Stmt>),
    /// `;`
    Empty,
}

/// A parameter of a function.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (may be empty in a prototype).
    pub name: String,
    /// Parameter type after array decay.
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A local variable, after sema flattens block scopes into one
/// uniquely-named list per function.
#[derive(Debug, Clone, PartialEq)]
pub struct Local {
    /// Unique name within the function (shadowed names get a `$n` suffix).
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Source location of the declaration.
    pub span: Span,
}

/// A function definition or prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// True if declared variadic (or with an empty parameter list).
    pub variadic: bool,
    /// Body (`None` for prototypes / externs).
    pub body: Option<Vec<Stmt>>,
    /// Flattened locals (filled by sema).
    pub locals: Vec<Local>,
    /// Source location.
    pub span: Span,
}

impl Function {
    /// True if this is a definition (has a body).
    pub fn is_definition(&self) -> bool {
        self.body.is_some()
    }

    /// Builds this function's signature type.
    pub fn sig(&self) -> crate::types::FuncSig {
        crate::types::FuncSig {
            ret: self.ret.clone(),
            params: self.params.iter().map(|p| p.ty.clone()).collect(),
            variadic: self.variadic,
        }
    }
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional initializer (hoisted into `main` by the simplifier).
    pub init: Option<Init>,
    /// Source location.
    pub span: Span,
}

/// A full translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// All struct/union definitions.
    pub structs: StructTable,
    /// Global variables, in declaration order.
    pub globals: Vec<Global>,
    /// Functions (definitions and prototypes), in declaration order.
    pub functions: Vec<Function>,
    /// `enum` constants visible at file scope.
    pub enum_consts: std::collections::BTreeMap<String, i64>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<(GlobalId, &Global)> {
        self.globals
            .iter()
            .enumerate()
            .find(|(_, g)| g.name == name)
            .map(|(i, g)| (GlobalId(i as u32), g))
    }

    /// The id of `main`, if defined.
    pub fn main(&self) -> Option<FuncId> {
        self.function("main").map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_ty_panics_before_sema() {
        let e = Expr::new(ExprKind::IntLit(1), Span::dummy());
        let r = std::panic::catch_unwind(|| e.ty().clone());
        assert!(r.is_err());
    }

    #[test]
    fn binary_op_classes() {
        assert!(BinaryOp::Lt.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert!(BinaryOp::LogOr.is_logical());
        assert!(!BinaryOp::BitOr.is_logical());
    }

    #[test]
    fn program_lookup() {
        let mut p = Program::new();
        p.functions.push(Function {
            name: "main".into(),
            ret: Type::Int,
            params: vec![],
            variadic: false,
            body: Some(vec![]),
            locals: vec![],
            span: Span::dummy(),
        });
        p.globals.push(Global {
            name: "g".into(),
            ty: Type::Int,
            init: None,
            span: Span::dummy(),
        });
        assert_eq!(p.main(), Some(FuncId(0)));
        assert_eq!(p.global("g").unwrap().0, GlobalId(0));
        assert!(p.function("missing").is_none());
    }
}
