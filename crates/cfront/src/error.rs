//! Front-end diagnostics.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// The phase of the front end that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Syntax analysis.
    Parse,
    /// Name resolution and type checking.
    Sema,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Parse => write!(f, "parse"),
            Phase::Sema => write!(f, "sema"),
        }
    }
}

/// An error produced while lexing, parsing, or analyzing a translation
/// unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    phase: Phase,
    span: Span,
    message: String,
}

impl FrontendError {
    /// Creates a new error for the given phase.
    pub fn new(phase: Phase, span: Span, message: impl Into<String>) -> Self {
        FrontendError {
            phase,
            span,
            message: message.into(),
        }
    }

    /// The phase that produced the error.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The source location of the error.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The human-readable message, without location prefix.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl Error for FrontendError {}

/// Convenience alias used throughout the front end.
pub type Result<T> = std::result::Result<T, FrontendError>;

/// Builds a lexer error.
pub(crate) fn lex_err(span: Span, msg: impl Into<String>) -> FrontendError {
    FrontendError::new(Phase::Lex, span, msg)
}

/// Builds a parser error.
pub(crate) fn parse_err(span: Span, msg: impl Into<String>) -> FrontendError {
    FrontendError::new(Phase::Parse, span, msg)
}

/// Builds a semantic-analysis error.
pub(crate) fn sema_err(span: Span, msg: impl Into<String>) -> FrontendError {
    FrontendError::new(Phase::Sema, span, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_location_message() {
        let e = FrontendError::new(Phase::Parse, Span::new(0, 1, 4, 2), "expected ';'");
        assert_eq!(e.to_string(), "parse error at 4:2: expected ';'");
    }

    #[test]
    fn accessors_round_trip() {
        let e = sema_err(Span::new(1, 2, 3, 4), "undefined variable `x`");
        assert_eq!(e.phase(), Phase::Sema);
        assert_eq!(e.span().line, 3);
        assert_eq!(e.message(), "undefined variable `x`");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<FrontendError>();
    }
}
