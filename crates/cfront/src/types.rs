//! C types for the subset: scalars, pointers, arrays, structs/unions, and
//! function types (which make function pointers first-class, as required
//! by the analysis).

use std::collections::BTreeMap;
use std::fmt;

/// Identifies a struct or union definition in a [`StructTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StructId(pub u32);

impl fmt::Display for StructId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "struct#{}", self.0)
    }
}

/// A C type in the subset.
///
/// `float`, `long`, `short`, `unsigned`, `signed` are normalized to
/// [`Type::Int`] / [`Type::Double`]; qualifiers are dropped. Neither
/// affects points-to behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` — only valid as a return type or behind a pointer.
    Void,
    /// Any integer type.
    Int,
    /// `char`.
    Char,
    /// Any floating type.
    Double,
    /// `T *`.
    Pointer(Box<Type>),
    /// `T [n]`; `n` is `None` for incomplete array types (e.g. parameters).
    Array(Box<Type>, Option<u64>),
    /// A struct or union type.
    Struct(StructId),
    /// A function type; a value of this type only occurs as a function
    /// designator and decays to a function pointer.
    Func(Box<FuncSig>),
}

impl Type {
    /// Shorthand for a pointer to `self`.
    pub fn ptr_to(self) -> Type {
        Type::Pointer(Box::new(self))
    }

    /// True for pointer types.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Pointer(_))
    }

    /// True for array types.
    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array(..))
    }

    /// True for struct/union types.
    pub fn is_struct(&self) -> bool {
        matches!(self, Type::Struct(_))
    }

    /// True for function types.
    pub fn is_func(&self) -> bool {
        matches!(self, Type::Func(_))
    }

    /// True if a value of this type is (or decays to) a pointer to a
    /// function: either a function designator or a pointer whose pointee
    /// is a function type.
    pub fn is_func_pointerish(&self) -> bool {
        match self {
            Type::Func(_) => true,
            Type::Pointer(p) => p.is_func(),
            _ => false,
        }
    }

    /// True for arithmetic (non-pointer scalar) types.
    pub fn is_arith(&self) -> bool {
        matches!(self, Type::Int | Type::Char | Type::Double)
    }

    /// The pointee of a pointer type, or the element type of an array.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Pointer(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// The element type of an array type.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Applies array-to-pointer and function-to-pointer decay, as happens
    /// to any value used in an rvalue context.
    pub fn decay(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Pointer(elem.clone()),
            Type::Func(_) => Type::Pointer(Box::new(self.clone())),
            other => other.clone(),
        }
    }

    /// True if assigning/copying a value of this type can transfer
    /// points-to information (i.e. the type contains a pointer at any
    /// depth reachable without dereferencing).
    pub fn carries_pointers(&self, structs: &StructTable) -> bool {
        match self {
            Type::Pointer(_) | Type::Func(_) => true,
            Type::Array(elem, _) => elem.carries_pointers(structs),
            Type::Struct(id) => structs
                .def(*id)
                .fields
                .iter()
                .any(|f| f.ty.carries_pointers(structs)),
            _ => false,
        }
    }

    /// Renders the type in a C-like syntax (sufficient for diagnostics;
    /// not a full declarator printer).
    pub fn display<'a>(&'a self, structs: &'a StructTable) -> TypeDisplay<'a> {
        TypeDisplay { ty: self, structs }
    }
}

/// Helper returned by [`Type::display`].
#[derive(Debug)]
pub struct TypeDisplay<'a> {
    ty: &'a Type,
    structs: &'a StructTable,
}

impl fmt::Display for TypeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ty {
            Type::Void => write!(f, "void"),
            Type::Int => write!(f, "int"),
            Type::Char => write!(f, "char"),
            Type::Double => write!(f, "double"),
            Type::Pointer(t) => write!(f, "{}*", t.display(self.structs)),
            Type::Array(t, Some(n)) => write!(f, "{}[{}]", t.display(self.structs), n),
            Type::Array(t, None) => write!(f, "{}[]", t.display(self.structs)),
            Type::Struct(id) => {
                let def = self.structs.def(*id);
                let kw = if def.is_union { "union" } else { "struct" };
                match &def.name {
                    Some(n) => write!(f, "{kw} {n}"),
                    None => write!(f, "{kw} <anon#{}>", id.0),
                }
            }
            Type::Func(sig) => {
                write!(f, "{}(", sig.ret.display(self.structs))?;
                for (i, p) in sig.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", p.display(self.structs))?;
                }
                if sig.variadic {
                    if !sig.params.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(f, "...")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Signature of a function type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncSig {
    /// Return type.
    pub ret: Type,
    /// Parameter types, in order (after array decay).
    pub params: Vec<Type>,
    /// True if declared with a trailing `...` or with an empty `()`
    /// parameter list (old-style, accepts anything).
    pub variadic: bool,
}

/// A named member of a struct or union.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
}

/// A struct or union definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Tag name, if not anonymous.
    pub name: Option<String>,
    /// True for `union` (treated like a struct for points-to purposes;
    /// see DESIGN.md).
    pub is_union: bool,
    /// Members in declaration order.
    pub fields: Vec<Field>,
    /// False while only forward-declared.
    pub complete: bool,
}

impl StructDef {
    /// Finds a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// Registry of all struct/union definitions in a translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StructTable {
    defs: Vec<StructDef>,
    by_tag: BTreeMap<String, StructId>,
}

impl StructTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of definitions (including incomplete forward declarations).
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if no structs have been declared.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The definition behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    pub fn def(&self, id: StructId) -> &StructDef {
        &self.defs[id.0 as usize]
    }

    /// Looks up a struct by tag name.
    pub fn by_tag(&self, tag: &str) -> Option<StructId> {
        self.by_tag.get(tag).copied()
    }

    /// Declares (or returns the existing) struct for `tag`. The
    /// definition starts incomplete.
    pub fn declare(&mut self, tag: &str, is_union: bool) -> StructId {
        if let Some(id) = self.by_tag.get(tag) {
            return *id;
        }
        let id = StructId(self.defs.len() as u32);
        self.defs.push(StructDef {
            name: Some(tag.to_owned()),
            is_union,
            fields: Vec::new(),
            complete: false,
        });
        self.by_tag.insert(tag.to_owned(), id);
        id
    }

    /// Adds an anonymous struct definition.
    pub fn add_anon(&mut self, is_union: bool, fields: Vec<Field>) -> StructId {
        let id = StructId(self.defs.len() as u32);
        self.defs.push(StructDef {
            name: None,
            is_union,
            fields,
            complete: true,
        });
        id
    }

    /// Completes a previously declared struct with its field list.
    ///
    /// Returns `false` if the struct was already complete (a
    /// redefinition, which the caller reports as an error).
    pub fn complete(&mut self, id: StructId, fields: Vec<Field>) -> bool {
        let def = &mut self.defs[id.0 as usize];
        if def.complete {
            return false;
        }
        def.fields = fields;
        def.complete = true;
        true
    }

    /// Iterates over `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StructId, &StructDef)> {
        self.defs
            .iter()
            .enumerate()
            .map(|(i, d)| (StructId(i as u32), d))
    }
}

/// A fixed layout model sufficient for `sizeof` in constant expressions
/// (LP64-like: pointers are 8 bytes, no padding).
pub fn size_of(ty: &Type, structs: &StructTable) -> i64 {
    match ty {
        Type::Void => 1,
        Type::Int => 4,
        Type::Char => 1,
        Type::Double => 8,
        Type::Pointer(_) | Type::Func(_) => 8,
        Type::Array(elem, n) => size_of(elem, structs) * n.unwrap_or(0) as i64,
        Type::Struct(id) => {
            let def = structs.def(*id);
            if def.is_union {
                def.fields
                    .iter()
                    .map(|f| size_of(&f.ty, structs))
                    .max()
                    .unwrap_or(0)
            } else {
                def.fields.iter().map(|f| size_of(&f.ty, structs)).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_of_layout_model() {
        let mut t = StructTable::new();
        let s = t.add_anon(
            false,
            vec![
                Field {
                    name: "a".into(),
                    ty: Type::Int,
                },
                Field {
                    name: "p".into(),
                    ty: Type::Int.ptr_to(),
                },
            ],
        );
        assert_eq!(size_of(&Type::Struct(s), &t), 12);
        assert_eq!(
            size_of(&Type::Array(Box::new(Type::Double), Some(3)), &t),
            24
        );
        let u = t.add_anon(
            true,
            vec![
                Field {
                    name: "a".into(),
                    ty: Type::Int,
                },
                Field {
                    name: "d".into(),
                    ty: Type::Double,
                },
            ],
        );
        assert_eq!(size_of(&Type::Struct(u), &t), 8);
    }

    #[test]
    fn decay_array_and_function() {
        let arr = Type::Array(Box::new(Type::Int), Some(10));
        assert_eq!(arr.decay(), Type::Int.ptr_to());
        let f = Type::Func(Box::new(FuncSig {
            ret: Type::Int,
            params: vec![],
            variadic: false,
        }));
        assert_eq!(f.decay(), Type::Pointer(Box::new(f.clone())));
        assert_eq!(Type::Int.decay(), Type::Int);
    }

    #[test]
    fn func_pointerish() {
        let f = Type::Func(Box::new(FuncSig {
            ret: Type::Void,
            params: vec![],
            variadic: true,
        }));
        assert!(f.is_func_pointerish());
        assert!(f.clone().decay().is_func_pointerish());
        assert!(!Type::Int.ptr_to().is_func_pointerish());
    }

    #[test]
    fn struct_table_declare_and_complete() {
        let mut t = StructTable::new();
        let id = t.declare("node", false);
        assert_eq!(t.by_tag("node"), Some(id));
        assert!(!t.def(id).complete);
        // Re-declaration returns the same id.
        assert_eq!(t.declare("node", false), id);
        assert!(t.complete(
            id,
            vec![
                Field {
                    name: "val".into(),
                    ty: Type::Int
                },
                Field {
                    name: "next".into(),
                    ty: Type::Struct(id).ptr_to()
                },
            ]
        ));
        assert!(t.def(id).complete);
        // Completing twice fails (redefinition).
        assert!(!t.complete(id, vec![]));
        assert_eq!(t.def(id).field("next").unwrap().name, "next");
        assert!(t.def(id).field("missing").is_none());
    }

    #[test]
    fn carries_pointers_through_aggregates() {
        let mut t = StructTable::new();
        let plain = t.add_anon(
            false,
            vec![Field {
                name: "x".into(),
                ty: Type::Int,
            }],
        );
        let ptry = t.add_anon(
            false,
            vec![Field {
                name: "p".into(),
                ty: Type::Int.ptr_to(),
            }],
        );
        assert!(!Type::Struct(plain).carries_pointers(&t));
        assert!(Type::Struct(ptry).carries_pointers(&t));
        assert!(Type::Array(Box::new(Type::Struct(ptry)), Some(4)).carries_pointers(&t));
        assert!(!Type::Double.carries_pointers(&t));
    }

    #[test]
    fn display_renders_types() {
        let t = StructTable::new();
        assert_eq!(Type::Int.ptr_to().ptr_to().display(&t).to_string(), "int**");
        assert_eq!(
            Type::Array(Box::new(Type::Char), Some(8))
                .display(&t)
                .to_string(),
            "char[8]"
        );
        let f = Type::Func(Box::new(FuncSig {
            ret: Type::Int,
            params: vec![Type::Int, Type::Char.ptr_to()],
            variadic: true,
        }));
        assert_eq!(f.display(&t).to_string(), "int(int, char*, ...)");
    }
}
