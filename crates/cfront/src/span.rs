//! Source positions and spans.

use std::fmt;

/// A half-open byte range into a source file, with 1-based line/column of
/// its start for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a new span.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// A synthetic span for generated constructs.
    pub fn dummy() -> Self {
        Span::default()
    }

    /// Returns the smallest span covering both `self` and `other`.
    ///
    /// The line/column of the earlier span is kept.
    pub fn to(self, other: Span) -> Span {
        let (line, col) = if self.start <= other.start {
            (self.line, self.col)
        } else {
            (other.line, other.col)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line,
            col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_to_keeps_earlier_position() {
        let a = Span::new(0, 3, 1, 1);
        let b = Span::new(10, 12, 2, 4);
        let joined = a.to(b);
        assert_eq!(joined.start, 0);
        assert_eq!(joined.end, 12);
        assert_eq!(joined.line, 1);
        assert_eq!(joined.col, 1);
        let joined_rev = b.to(a);
        assert_eq!(joined_rev, joined);
    }

    #[test]
    fn dummy_is_zeroed() {
        let d = Span::dummy();
        assert_eq!(d.start, 0);
        assert_eq!(d.end, 0);
    }

    #[test]
    fn display_shows_line_col() {
        let s = Span::new(5, 9, 3, 7);
        assert_eq!(s.to_string(), "3:7");
    }
}
