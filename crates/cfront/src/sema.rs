//! Semantic analysis: name resolution, block-scope flattening, and
//! expression typing.
//!
//! After [`analyze`] succeeds:
//! - every [`ExprKind::Ident`] carries a [`Resolution`];
//! - every [`Expr::ty`] is `Some`;
//! - every [`LocalDecl::local_id`] is `Some`, and each function's
//!   [`Function::locals`] lists its (uniquely renamed) locals;
//! - calls to undeclared functions are resolved against the modelled
//!   external table ([`crate::builtins`]) or registered as implicit
//!   prototypes.

use crate::ast::*;
use crate::builtins::builtins;
use crate::error::{sema_err, Result};
use crate::span::Span;
use crate::types::{FuncSig, StructTable, Type};
use std::collections::BTreeMap;

/// Runs semantic analysis over a parsed program, mutating it in place.
///
/// # Errors
///
/// Returns the first semantic error: undeclared variables, bad
/// dereferences, unknown struct fields, calls to non-functions, etc.
pub fn analyze(program: &mut Program) -> Result<()> {
    // Register modelled externals that the program does not itself declare.
    for b in builtins() {
        if program.functions.iter().any(|f| f.name == b.name) {
            continue;
        }
        program.functions.push(Function {
            name: b.name.to_owned(),
            ret: b.sig.ret.clone(),
            params: b
                .sig
                .params
                .iter()
                .map(|t| Param {
                    name: String::new(),
                    ty: t.clone(),
                    span: Span::dummy(),
                })
                .collect(),
            variadic: b.sig.variadic,
            body: None,
            locals: Vec::new(),
            span: Span::dummy(),
        });
    }

    let n = program.functions.len();
    for idx in 0..n {
        let body = program.functions[idx].body.take();
        let Some(mut body) = body else { continue };
        let mut ctx = FnCtx::new(program, idx);
        for stmt in &mut body {
            ctx.stmt(stmt)?;
        }
        let locals = ctx.locals;
        let func = &mut program.functions[idx];
        func.locals = locals;
        func.body = Some(body);
    }

    // Type global initializers (scalar expressions only need typing; list
    // structure is validated by the simplifier against the declared type).
    let n_globals = program.globals.len();
    for idx in 0..n_globals {
        let init = program.globals[idx].init.take();
        let Some(mut init) = init else { continue };
        {
            let mut ctx = GlobalInitCtx { program };
            ctx.init(&mut init)?;
        }
        program.globals[idx].init = Some(init);
    }
    Ok(())
}

/// Typing context for global initializers (no locals in scope).
struct GlobalInitCtx<'a> {
    program: &'a mut Program,
}

impl GlobalInitCtx<'_> {
    fn init(&mut self, init: &mut Init) -> Result<()> {
        match init {
            Init::Expr(e) => {
                // Reuse FnCtx machinery with an empty local scope by
                // borrowing the program for a synthetic context.
                let mut ctx = FnCtx::global_scope(self.program);
                ctx.expr(e)?;
                Ok(())
            }
            Init::List(items) => {
                for i in items {
                    self.init(i)?;
                }
                Ok(())
            }
        }
    }
}

struct FnCtx<'a> {
    program: &'a mut Program,
    /// Index of the function being analyzed (usize::MAX at global scope).
    func_idx: usize,
    /// Flattened local list being built.
    locals: Vec<Local>,
    /// Stack of block scopes mapping source names to resolutions.
    scopes: Vec<BTreeMap<String, Resolution>>,
    /// How many locals share each source name (for `$n` renaming).
    name_counts: BTreeMap<String, u32>,
}

impl<'a> FnCtx<'a> {
    fn new(program: &'a mut Program, func_idx: usize) -> Self {
        let mut scopes = vec![BTreeMap::new()];
        let param_count = program.functions[func_idx].params.len();
        for i in 0..param_count {
            let name = program.functions[func_idx].params[i].name.clone();
            scopes[0].insert(name, Resolution::Param(i as u32));
        }
        FnCtx {
            program,
            func_idx,
            locals: Vec::new(),
            scopes,
            name_counts: BTreeMap::new(),
        }
    }

    fn global_scope(program: &'a mut Program) -> Self {
        FnCtx {
            program,
            func_idx: usize::MAX,
            locals: Vec::new(),
            scopes: vec![BTreeMap::new()],
            name_counts: BTreeMap::new(),
        }
    }

    fn structs(&self) -> &StructTable {
        &self.program.structs
    }

    fn resolve(&self, name: &str) -> Option<Resolution> {
        for scope in self.scopes.iter().rev() {
            if let Some(r) = scope.get(name) {
                return Some(*r);
            }
        }
        if let Some((id, _)) = self.program.global(name) {
            return Some(Resolution::Global(id));
        }
        if let Some((id, _)) = self.program.function(name) {
            return Some(Resolution::Func(id));
        }
        if let Some(v) = self.program.enum_consts.get(name) {
            return Some(Resolution::EnumConst(*v));
        }
        None
    }

    fn declare_local(&mut self, name: &str, ty: Type, span: Span) -> LocalId {
        let count = self.name_counts.entry(name.to_owned()).or_insert(0);
        let unique = if *count == 0 {
            name.to_owned()
        } else {
            format!("{name}${count}")
        };
        *count += 1;
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(Local {
            name: unique,
            ty,
            span,
        });
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_owned(), Resolution::Local(id));
        id
    }

    fn resolution_type(&self, r: Resolution) -> Type {
        match r {
            Resolution::Local(id) => self.locals[id.0 as usize].ty.clone(),
            Resolution::Param(i) => self.program.functions[self.func_idx].params[i as usize]
                .ty
                .clone(),
            Resolution::Global(id) => self.program.globals[id.0 as usize].ty.clone(),
            Resolution::Func(id) => {
                let f = &self.program.functions[id.0 as usize];
                Type::Func(Box::new(f.sig()))
            }
            Resolution::EnumConst(_) => Type::Int,
        }
    }

    // ----- statements ------------------------------------------------------

    fn stmt(&mut self, s: &mut Stmt) -> Result<()> {
        match &mut s.kind {
            StmtKind::Expr(e) => {
                self.expr(e)?;
            }
            StmtKind::Decl(decls) => {
                for d in decls {
                    let id = self.declare_local(&d.name, d.ty.clone(), d.span);
                    d.local_id = Some(id);
                    if let Some(init) = &mut d.init {
                        self.init(init)?;
                    }
                }
            }
            StmtKind::If(c, t, e) => {
                self.expr(c)?;
                self.stmt(t)?;
                if let Some(e) = e {
                    self.stmt(e)?;
                }
            }
            StmtKind::While(c, b) => {
                self.expr(c)?;
                self.stmt(b)?;
            }
            StmtKind::DoWhile(b, c) => {
                self.stmt(b)?;
                self.expr(c)?;
            }
            StmtKind::For(i, c, st, b) => {
                if let Some(i) = i {
                    self.expr(i)?;
                }
                if let Some(c) = c {
                    self.expr(c)?;
                }
                if let Some(st) = st {
                    self.expr(st)?;
                }
                self.stmt(b)?;
            }
            StmtKind::Switch(e, arms) => {
                self.expr(e)?;
                for arm in arms {
                    self.scopes.push(BTreeMap::new());
                    for s in &mut arm.stmts {
                        self.stmt(s)?;
                    }
                    self.scopes.pop();
                }
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.expr(e)?;
                }
            }
            StmtKind::Block(stmts) => {
                self.scopes.push(BTreeMap::new());
                for s in stmts {
                    self.stmt(s)?;
                }
                self.scopes.pop();
            }
            StmtKind::Break | StmtKind::Continue | StmtKind::Empty => {}
        }
        Ok(())
    }

    fn init(&mut self, init: &mut Init) -> Result<()> {
        match init {
            Init::Expr(e) => self.expr(e).map(|_| ()),
            Init::List(items) => {
                for i in items {
                    self.init(i)?;
                }
                Ok(())
            }
        }
    }

    // ----- expressions ------------------------------------------------------

    /// Types an expression tree, filling `ty` on every node.
    fn expr(&mut self, e: &mut Expr) -> Result<Type> {
        let ty = self.expr_kind(&mut e.kind, e.span)?;
        e.ty = Some(ty.clone());
        Ok(ty)
    }

    fn expr_kind(&mut self, kind: &mut ExprKind, span: Span) -> Result<Type> {
        match kind {
            ExprKind::IntLit(_) => Ok(Type::Int),
            ExprKind::FloatLit(_) => Ok(Type::Double),
            ExprKind::CharLit(_) => Ok(Type::Int),
            ExprKind::StrLit(_) => Ok(Type::Char.ptr_to()),
            ExprKind::Ident(name, res) => {
                let r = self
                    .resolve(name)
                    .ok_or_else(|| sema_err(span, format!("undeclared identifier `{name}`")))?;
                *res = Some(r);
                Ok(self.resolution_type(r))
            }
            ExprKind::Unary(op, inner) => {
                let it = self.expr(inner)?;
                match op {
                    UnaryOp::Neg | UnaryOp::BitNot => Ok(it),
                    UnaryOp::Not => Ok(Type::Int),
                    UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::PostInc | UnaryOp::PostDec => {
                        Ok(it)
                    }
                    UnaryOp::AddrOf => {
                        if matches!(inner.kind, ExprKind::Ident(_, Some(Resolution::Func(_)))) {
                            // `&f` on a function designator yields the
                            // same function pointer as plain `f`.
                            Ok(it.decay())
                        } else if !is_lvalue(inner) {
                            Err(sema_err(span, "cannot take the address of an rvalue"))
                        } else {
                            Ok(it.ptr_to())
                        }
                    }
                    UnaryOp::Deref => {
                        let d = it.decay();
                        match d {
                            Type::Pointer(p) => {
                                if matches!(*p, Type::Void) {
                                    Err(sema_err(span, "dereference of `void*`"))
                                } else {
                                    Ok(*p)
                                }
                            }
                            _ => Err(sema_err(
                                span,
                                format!(
                                    "cannot dereference non-pointer of type `{}`",
                                    it.display(self.structs())
                                ),
                            )),
                        }
                    }
                }
            }
            ExprKind::Binary(op, a, b) => {
                let ta = self.expr(a)?.decay();
                let tb = self.expr(b)?.decay();
                if op.is_comparison() || op.is_logical() {
                    return Ok(Type::Int);
                }
                Ok(match (*op, &ta, &tb) {
                    (BinaryOp::Add | BinaryOp::Sub, Type::Pointer(_), Type::Pointer(_)) => {
                        Type::Int // pointer difference
                    }
                    (BinaryOp::Add | BinaryOp::Sub, Type::Pointer(_), _) => ta.clone(),
                    (BinaryOp::Add, _, Type::Pointer(_)) => tb.clone(),
                    _ => {
                        if ta == Type::Double || tb == Type::Double {
                            Type::Double
                        } else {
                            Type::Int
                        }
                    }
                })
            }
            ExprKind::Assign(lhs, _, rhs) => {
                let lt = self.expr(lhs)?;
                self.expr(rhs)?;
                if !is_lvalue(lhs) {
                    return Err(sema_err(span, "assignment target is not an lvalue"));
                }
                Ok(lt)
            }
            ExprKind::Cond(c, t, f) => {
                self.expr(c)?;
                let tt = self.expr(t)?.decay();
                let tf = self.expr(f)?.decay();
                // Prefer the pointer branch so that `p ? p : 0` is a pointer.
                Ok(if tt.is_pointer() {
                    tt
                } else if tf.is_pointer() {
                    tf
                } else {
                    tt
                })
            }
            ExprKind::Call(callee, args) => {
                // Implicitly declare `foo(...)` for an unknown direct callee.
                if let ExprKind::Ident(name, _) = &callee.kind {
                    if self.resolve(name).is_none() {
                        let fname = name.clone();
                        self.program.functions.push(Function {
                            name: fname,
                            ret: Type::Int,
                            params: Vec::new(),
                            variadic: true,
                            body: None,
                            locals: Vec::new(),
                            span,
                        });
                    }
                }
                let ct = self.expr(callee)?.decay();
                for a in args.iter_mut() {
                    self.expr(a)?;
                }
                let sig = callee_sig(&ct).ok_or_else(|| {
                    sema_err(
                        span,
                        format!("called object has type `{}`", ct.display(self.structs())),
                    )
                })?;
                if !sig.variadic && sig.params.len() != args.len() {
                    return Err(sema_err(
                        span,
                        format!(
                            "call supplies {} argument(s) but callee takes {}",
                            args.len(),
                            sig.params.len()
                        ),
                    ));
                }
                Ok(sig.ret.clone())
            }
            ExprKind::Index(base, idx) => {
                let bt = self.expr(base)?.decay();
                self.expr(idx)?;
                match bt {
                    Type::Pointer(p) => Ok(*p),
                    _ => Err(sema_err(
                        span,
                        format!(
                            "cannot index non-array type `{}`",
                            bt.display(self.structs())
                        ),
                    )),
                }
            }
            ExprKind::Member(base, field, arrow) => {
                let bt = self.expr(base)?;
                let sid = match (&bt, *arrow) {
                    (Type::Struct(id), false) => *id,
                    (Type::Pointer(inner), true) => match inner.as_ref() {
                        Type::Struct(id) => *id,
                        _ => {
                            return Err(sema_err(span, "`->` on non-struct pointer"));
                        }
                    },
                    (Type::Pointer(_), false) => {
                        return Err(sema_err(span, "`.` used on a pointer; use `->`"));
                    }
                    (Type::Struct(_), true) => {
                        return Err(sema_err(span, "`->` used on a struct value; use `.`"));
                    }
                    _ => {
                        return Err(sema_err(
                            span,
                            format!(
                                "member access on non-struct type `{}`",
                                bt.display(self.structs())
                            ),
                        ));
                    }
                };
                let def = self.structs().def(sid);
                if !def.complete {
                    return Err(sema_err(span, "member access on incomplete struct type"));
                }
                def.field(field)
                    .map(|f| f.ty.clone())
                    .ok_or_else(|| sema_err(span, format!("no field `{field}` in struct")))
            }
            ExprKind::Cast(ty, inner) => {
                self.expr(inner)?;
                Ok(ty.clone())
            }
            ExprKind::SizeofTy(_) => Ok(Type::Int),
            ExprKind::SizeofExpr(inner) => {
                self.expr(inner)?;
                Ok(Type::Int)
            }
            ExprKind::Comma(a, b) => {
                self.expr(a)?;
                self.expr(b)
            }
        }
    }
}

fn callee_sig(decayed: &Type) -> Option<&FuncSig> {
    match decayed {
        Type::Pointer(inner) => match inner.as_ref() {
            Type::Func(sig) => Some(sig),
            _ => None,
        },
        Type::Func(sig) => Some(sig),
        _ => None,
    }
}

/// Conservative lvalue check: identifiers (not functions/enum constants),
/// dereferences, indexes, and member accesses.
fn is_lvalue(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Ident(_, Some(Resolution::Func(_) | Resolution::EnumConst(_))) => false,
        ExprKind::Ident(..) => true,
        ExprKind::Unary(UnaryOp::Deref, _) => true,
        ExprKind::Index(..) => true,
        ExprKind::Member(..) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Program {
        let mut p = parse(src).expect("parse ok");
        analyze(&mut p).expect("sema ok");
        p
    }

    fn check_err(src: &str) -> crate::error::FrontendError {
        let mut p = parse(src).expect("parse ok");
        analyze(&mut p).expect_err("sema should fail")
    }

    #[test]
    fn resolves_params_locals_globals() {
        let p = check("int g; int f(int a) { int x; x = a + g; return x; }");
        let f = p.function("f").unwrap().1;
        assert_eq!(f.locals.len(), 1);
        assert_eq!(f.locals[0].name, "x");
    }

    #[test]
    fn shadowed_locals_get_unique_names() {
        let p = check("int f(void) { int x; x = 1; { int x; x = 2; } return x; }");
        let f = p.function("f").unwrap().1;
        let names: Vec<_> = f.locals.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["x", "x$1"]);
    }

    #[test]
    fn types_pointer_expressions() {
        let p = check("int f(int **pp) { int *q; q = *pp; return *q; }");
        let f = p.function("f").unwrap().1;
        let body = f.body.as_ref().unwrap();
        // `q = *pp` — check the assignment's type is int*.
        let StmtKind::Expr(e) = &body[1].kind else {
            panic!()
        };
        assert_eq!(e.ty, Some(Type::Int.ptr_to()));
    }

    #[test]
    fn function_designator_decays() {
        let p = check("int foo(void){return 0;} int (*fp)(void); int main(void){ fp = foo; fp = &foo; return fp(); }");
        assert!(p.function("foo").is_some());
    }

    #[test]
    fn undeclared_variable_is_error() {
        let e = check_err("int f(void) { return nope; }");
        assert!(e.message().contains("undeclared"));
    }

    #[test]
    fn deref_non_pointer_is_error() {
        let e = check_err("int f(int x) { return *x; }");
        assert!(e.message().contains("dereference"));
    }

    #[test]
    fn deref_void_pointer_is_error() {
        let e = check_err("int f(void *p) { return *p; }");
        assert!(e.message().contains("void*"));
    }

    #[test]
    fn unknown_field_is_error() {
        let e = check_err("struct s { int a; }; int f(struct s *p) { return p->b; }");
        assert!(e.message().contains("no field"));
    }

    #[test]
    fn dot_on_pointer_is_error() {
        let e = check_err("struct s { int a; }; int f(struct s *p) { return p.a; }");
        assert!(e.message().contains("->"));
    }

    #[test]
    fn malloc_is_modelled() {
        let p = check("int main(void) { int *p; p = (int*) malloc(4); *p = 1; return *p; }");
        assert!(p.function("malloc").is_some());
        assert!(!p.function("malloc").unwrap().1.is_definition());
    }

    #[test]
    fn implicit_function_declaration() {
        let p = check("int main(void) { return mystery(1, 2); }");
        let f = p.function("mystery").unwrap().1;
        assert!(f.variadic);
        assert!(!f.is_definition());
    }

    #[test]
    fn wrong_arity_is_error() {
        let e = check_err("int f(int a) { return a; } int main(void) { return f(1, 2); }");
        assert!(e.message().contains("argument"));
    }

    #[test]
    fn assignment_needs_lvalue() {
        let e = check_err("int f(int a) { (a + 1) = 2; return a; }");
        assert!(e.message().contains("lvalue"));
    }

    #[test]
    fn pointer_arithmetic_types() {
        let p = check("int f(int *p, int *q) { p = p + 1; return q - p; }");
        let f = p.function("f").unwrap().1;
        let StmtKind::Expr(e) = &f.body.as_ref().unwrap()[0].kind else {
            panic!()
        };
        assert_eq!(e.ty, Some(Type::Int.ptr_to()));
    }

    #[test]
    fn array_indexing_types() {
        let p = check("double m[8]; double f(int i) { return m[i]; }");
        let f = p.function("f").unwrap().1;
        let StmtKind::Return(Some(e)) = &f.body.as_ref().unwrap()[0].kind else {
            panic!()
        };
        assert_eq!(e.ty, Some(Type::Double));
    }

    #[test]
    fn global_initializers_typed() {
        let p = check("int a = 1 + 2; int *pa = &a;");
        let g = p.global("pa").unwrap().1;
        let Some(Init::Expr(e)) = &g.init else {
            panic!()
        };
        assert_eq!(e.ty, Some(Type::Int.ptr_to()));
    }

    #[test]
    fn string_literal_is_char_pointer() {
        let p = check("char *msg = \"hello\";");
        let Some(Init::Expr(e)) = &p.globals[0].init else {
            panic!()
        };
        assert_eq!(e.ty, Some(Type::Char.ptr_to()));
    }
}
