//! Tokens of the C subset.

use crate::span::Span;
use std::fmt;

/// A keyword of the C subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Int,
    Char,
    Double,
    Float,
    Long,
    Short,
    Unsigned,
    Signed,
    Void,
    Struct,
    Union,
    Enum,
    If,
    Else,
    While,
    Do,
    For,
    Switch,
    Case,
    Default,
    Break,
    Continue,
    Return,
    Sizeof,
    Static,
    Extern,
    Const,
    Register,
    Volatile,
}

impl Keyword {
    /// Looks up a keyword by its source spelling (infallible variant of
    /// the std trait, hence the deliberate name).
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "int" => Int,
            "char" => Char,
            "double" => Double,
            "float" => Float,
            "long" => Long,
            "short" => Short,
            "unsigned" => Unsigned,
            "signed" => Signed,
            "void" => Void,
            "struct" => Struct,
            "union" => Union,
            "enum" => Enum,
            "if" => If,
            "else" => Else,
            "while" => While,
            "do" => Do,
            "for" => For,
            "switch" => Switch,
            "case" => Case,
            "default" => Default,
            "break" => Break,
            "continue" => Continue,
            "return" => Return,
            "sizeof" => Sizeof,
            "static" => Static,
            "extern" => Extern,
            "const" => Const,
            "register" => Register,
            "volatile" => Volatile,
            _ => return None,
        })
    }

    /// The source spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Int => "int",
            Char => "char",
            Double => "double",
            Float => "float",
            Long => "long",
            Short => "short",
            Unsigned => "unsigned",
            Signed => "signed",
            Void => "void",
            Struct => "struct",
            Union => "union",
            Enum => "enum",
            If => "if",
            Else => "else",
            While => "while",
            Do => "do",
            For => "for",
            Switch => "switch",
            Case => "case",
            Default => "default",
            Break => "break",
            Continue => "continue",
            Return => "return",
            Sizeof => "sizeof",
            Static => "static",
            Extern => "extern",
            Const => "const",
            Register => "register",
            Volatile => "volatile",
        }
    }
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Shl,
    Shr,
    PlusPlus,
    MinusMinus,
    Question,
    Colon,
}

impl Punct {
    /// The source spelling of the punctuation.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Arrow => "->",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Assign => "=",
            PlusAssign => "+=",
            MinusAssign => "-=",
            StarAssign => "*=",
            SlashAssign => "/=",
            PercentAssign => "%=",
            AmpAssign => "&=",
            PipeAssign => "|=",
            CaretAssign => "^=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            Eq => "==",
            Ne => "!=",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            AndAnd => "&&",
            OrOr => "||",
            Shl => "<<",
            Shr => ">>",
            PlusPlus => "++",
            MinusMinus => "--",
            Question => "?",
            Colon => ":",
        }
    }
}

/// The payload of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword such as `int` or `while`.
    Keyword(Keyword),
    /// An identifier.
    Ident(String),
    /// An integer literal (value already decoded).
    IntLit(i64),
    /// A floating-point literal.
    FloatLit(f64),
    /// A character literal (value of the character).
    CharLit(i64),
    /// A string literal (unescaped contents).
    StrLit(String),
    /// Punctuation or an operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "`{}`", k.as_str()),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::IntLit(v) => write!(f, "integer `{v}`"),
            TokenKind::FloatLit(v) => write!(f, "float `{v}`"),
            TokenKind::CharLit(v) => write!(f, "char literal `{v}`"),
            TokenKind::StrLit(s) => write!(f, "string {s:?}"),
            TokenKind::Punct(p) => write!(f, "`{}`", p.as_str()),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }

    /// True if this token is the given punctuation.
    pub fn is_punct(&self, p: Punct) -> bool {
        matches!(self.kind, TokenKind::Punct(q) if q == p)
    }

    /// True if this token is the given keyword.
    pub fn is_keyword(&self, k: Keyword) -> bool {
        matches!(self.kind, TokenKind::Keyword(q) if q == k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Int,
            Keyword::While,
            Keyword::Sizeof,
            Keyword::Volatile,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("notakeyword"), None);
    }

    #[test]
    fn token_predicates() {
        let t = Token::new(TokenKind::Punct(Punct::Semi), Span::dummy());
        assert!(t.is_punct(Punct::Semi));
        assert!(!t.is_punct(Punct::Comma));
        assert!(!t.is_keyword(Keyword::If));
        let k = Token::new(TokenKind::Keyword(Keyword::If), Span::dummy());
        assert!(k.is_keyword(Keyword::If));
    }

    #[test]
    fn display_forms() {
        assert_eq!(TokenKind::Punct(Punct::Arrow).to_string(), "`->`");
        assert_eq!(
            TokenKind::Ident("abc".into()).to_string(),
            "identifier `abc`"
        );
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
