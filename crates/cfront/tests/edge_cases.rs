//! Front-end edge cases: declarator zoo, operator corners, scoping, and
//! diagnostics.

use pta_cfront::ast::{ExprKind, StmtKind};
use pta_cfront::types::Type;
use pta_cfront::{frontend, Phase};

fn ok(src: &str) -> pta_cfront::Program {
    frontend(src).expect("frontend ok")
}

fn fails(src: &str) -> pta_cfront::FrontendError {
    frontend(src).expect_err("frontend should fail")
}

// ---------------------------------------------------------------------
// Declarators
// ---------------------------------------------------------------------

#[test]
fn pointer_returning_function_definition() {
    let p = ok("int x; int *give(void) { return &x; } int main(void){ return *give(); }");
    let f = p.function("give").unwrap().1;
    assert_eq!(f.ret, Type::Int.ptr_to());
    assert!(f.is_definition());
}

#[test]
fn double_pointer_returning_function() {
    let p = ok("int *q; int **addr(void) { return &q; } int main(void){ return **addr(); }");
    assert_eq!(
        p.function("addr").unwrap().1.ret,
        Type::Int.ptr_to().ptr_to()
    );
}

#[test]
fn function_returning_function_pointer() {
    let p = ok("int f1(int a) { return a; }
         int (*sel(void))(int) { return f1; }
         int main(void){ int (*fp)(int); fp = sel(); return fp(3); }");
    let sel = p.function("sel").unwrap().1;
    let Type::Pointer(inner) = &sel.ret else {
        panic!("ret {:?}", sel.ret)
    };
    assert!(inner.is_func());
    assert_eq!(sel.params.len(), 0);
}

#[test]
fn pointer_to_array_parameter() {
    let p = ok("double f(double (*m)[4]) { return m[1][2]; } int main(void){ return 0; }");
    let f = p.function("f").unwrap().1;
    let Type::Pointer(inner) = &f.params[0].ty else {
        panic!()
    };
    assert!(matches!(inner.as_ref(), Type::Array(_, Some(4))));
}

#[test]
fn array_parameter_decays() {
    let p = ok("int f(int a[10]) { return a[0]; } int main(void){ return 0; }");
    assert_eq!(p.function("f").unwrap().1.params[0].ty, Type::Int.ptr_to());
}

#[test]
fn array_of_arrays() {
    let p = ok("int grid[3][5]; int main(void){ return grid[1][2]; }");
    let Type::Array(row, Some(3)) = &p.globals[0].ty else {
        panic!()
    };
    assert!(matches!(row.as_ref(), Type::Array(_, Some(5))));
}

#[test]
fn parenthesized_declarator_is_transparent() {
    let p = ok("int (x); int main(void){ return x; }");
    assert_eq!(p.globals[0].ty, Type::Int);
    assert_eq!(p.globals[0].name, "x");
}

#[test]
fn qualifiers_are_ignored() {
    let p = ok("const int c = 3; volatile int v; int main(void){ return c + v; }");
    assert_eq!(p.globals.len(), 2);
    assert_eq!(p.globals[0].ty, Type::Int);
}

#[test]
fn unsigned_long_short_normalize_to_int() {
    let p = ok("unsigned long a; short b; signed c; unsigned char d; int main(void){ return 0; }");
    assert_eq!(p.globals[0].ty, Type::Int);
    assert_eq!(p.globals[1].ty, Type::Int);
    assert_eq!(p.globals[2].ty, Type::Int);
    // `unsigned char` contains an int-like keyword → Int by our
    // normalization (documented: signedness is irrelevant to points-to).
    assert_eq!(p.globals[3].ty, Type::Int);
}

#[test]
fn float_normalizes_to_double() {
    let p = ok("float f; double d; int main(void){ return 0; }");
    assert_eq!(p.globals[0].ty, Type::Double);
    assert_eq!(p.globals[1].ty, Type::Double);
}

// ---------------------------------------------------------------------
// Structs, unions, enums
// ---------------------------------------------------------------------

#[test]
fn self_referential_struct() {
    let p = ok("struct list { int v; struct list *next; };
         int main(void){ struct list n; n.next = &n; return n.next->v; }");
    let id = p.structs.by_tag("list").unwrap();
    assert_eq!(p.structs.def(id).fields[1].ty, Type::Struct(id).ptr_to());
}

#[test]
fn mutually_referential_structs() {
    let p = ok("struct b;
         struct a { struct b *to_b; };
         struct b { struct a *to_a; };
         int main(void){ struct a x; struct b y; x.to_b = &y; y.to_a = &x; return 0; }");
    assert!(p.structs.by_tag("a").is_some());
    assert!(p.structs.by_tag("b").is_some());
}

#[test]
fn anonymous_struct_variable() {
    let p = ok("struct { int a; int b; } pair; int main(void){ return pair.a; }");
    assert!(matches!(p.globals[0].ty, Type::Struct(_)));
}

#[test]
fn struct_redefinition_is_an_error() {
    let e = fails("struct s { int a; }; struct s { int b; }; int main(void){ return 0; }");
    assert!(e.message().contains("redefinition"));
}

#[test]
fn duplicate_field_is_an_error() {
    let e = fails("struct s { int a; int a; }; int main(void){ return 0; }");
    assert!(e.message().contains("duplicate field"));
}

#[test]
fn enum_values_and_expressions() {
    let p = ok("enum e { A, B = A + 5, C };
         int arr[C];
         int main(void){ return B; }");
    assert_eq!(p.enum_consts["A"], 0);
    assert_eq!(p.enum_consts["B"], 5);
    assert_eq!(p.enum_consts["C"], 6);
    assert_eq!(p.globals[0].ty, Type::Array(Box::new(Type::Int), Some(6)));
}

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

#[test]
fn nested_unary_operators() {
    ok("int main(void){ int x; int *p; int **pp; x = 0; p = &x; pp = &p; return !-**pp; }");
}

#[test]
fn cast_chains() {
    ok("int main(void){ int x; char *c; c = (char*)(int*)&x; return (int)*c; }");
}

#[test]
fn sizeof_forms() {
    let p = ok("struct s { int a; int *p; };
         int main(void){ int n; struct s v;
            n = sizeof(int) + sizeof(struct s) + sizeof v + sizeof(int*);
            return n; }");
    assert!(p.main().is_some());
}

#[test]
fn ternary_chains_and_comma() {
    ok("int main(void){ int a; int b; a = 1 ? 2 : 3 ? 4 : 5; b = (a = 2, a + 1); return a + b; }");
}

#[test]
fn assignment_operators_all_parse() {
    ok("int main(void){ int a; a = 1; a += 2; a -= 1; a *= 3; a /= 2; a %= 3; a &= 7; a |= 8; a ^= 1; a <<= 2; a >>= 1; return a; }");
}

#[test]
fn string_concatenation() {
    let p = ok("char *s = \"abc\" \"def\"; int main(void){ return 0; }");
    let Some(pta_cfront::ast::Init::Expr(e)) = &p.globals[0].init else {
        panic!()
    };
    let ExprKind::StrLit(v) = &e.kind else {
        panic!("{e:?}")
    };
    assert_eq!(v, "abcdef");
}

#[test]
fn hex_octal_char_escapes() {
    ok("int main(void){ int a; a = 0xff + 017 + '\\n' + '\\0' + '\\\\'; return a; }");
}

#[test]
fn address_of_rvalue_is_an_error() {
    let e = fails("int main(void){ int a; int *p; p = &(a + 1); return 0; }");
    // Sema rejects it as a SIMPLE-form lvalue problem or lvalue check.
    assert_eq!(e.phase(), Phase::Sema);
}

// ---------------------------------------------------------------------
// Statements & scoping
// ---------------------------------------------------------------------

#[test]
fn deeply_nested_blocks_shadow() {
    let p = ok(
        "int f(void){ int x; x = 1; { int x; x = 2; { int x; x = 3; } } return x; }
         int main(void){ return f(); }",
    );
    let f = p.function("f").unwrap().1;
    let names: Vec<&str> = f.locals.iter().map(|l| l.name.as_str()).collect();
    assert_eq!(names, vec!["x", "x$1", "x$2"]);
}

#[test]
fn for_without_clauses() {
    let p = ok("int main(void){ int i; i = 0; for (;;) { i++; if (i > 3) break; } return i; }");
    let f = p.function("main").unwrap().1;
    assert!(f
        .body
        .as_ref()
        .unwrap()
        .iter()
        .any(|s| matches!(s.kind, StmtKind::For(..))));
}

#[test]
fn dangling_else_binds_to_nearest_if() {
    let p = ok("int main(void){ int a; a = 0; if (1) if (0) a = 1; else a = 2; return a; }");
    let f = p.function("main").unwrap().1;
    // Outer if has no else branch.
    let outer = f
        .body
        .as_ref()
        .unwrap()
        .iter()
        .find_map(|s| match &s.kind {
            StmtKind::If(_, t, e) => Some((t, e)),
            _ => None,
        })
        .unwrap();
    assert!(outer.1.is_none(), "else must bind to the inner if");
}

#[test]
fn empty_function_body() {
    ok("void nop(void) { } int main(void){ nop(); return 0; }");
}

#[test]
fn unterminated_block_is_an_error() {
    let e = fails("int main(void){ int a; a = 1;");
    assert_eq!(e.phase(), Phase::Parse);
}

#[test]
fn missing_semicolon_reports_location() {
    let e = fails("int main(void){\n  int a;\n  a = 1\n  return a;\n}");
    assert_eq!(e.phase(), Phase::Parse);
    assert_eq!(e.span().line, 4); // the `return` that follows the missing `;`
}

#[test]
fn call_before_declaration_uses_implicit_int() {
    let p = ok("int main(void){ return helper(3); } int helper(int v){ return v; }");
    // The implicit declaration is later superseded by the definition.
    assert!(p.function("helper").unwrap().1.is_definition());
}
