//! Tier-1 guarantees of the fact store: incremental re-analysis is
//! byte-identical to a cold run, snapshots round-trip losslessly, and
//! every kind of damage degrades to a cold run instead of failing.

use pta_benchsuite::SUITE;
use pta_core::analysis::{analyze_recorded, AnalysisConfig};
use pta_core::Fidelity;
use pta_lint::{lint_ir, LintOptions};
use pta_store::{
    analyze_incremental, canonical_facts, parse, perturb_source, serialize, verify, ColdReason,
    Snapshot, StoreError, WarmMode,
};

fn lint_of(
    ir: &pta_simple::IrProgram,
    result: &pta_core::AnalysisResult,
) -> Vec<pta_lint::Diagnostic> {
    lint_ir(
        ir,
        result,
        Fidelity::ContextSensitive,
        &LintOptions::default(),
    )
}

/// Cold-analyses a source and snapshots the run.
fn cold_snapshot(source: &str) -> (pta_simple::IrProgram, Snapshot) {
    let ir = pta_simple::compile(source).expect("benchmark compiles");
    let run = analyze_recorded(&ir, AnalysisConfig::default()).expect("benchmark analyses");
    let lint = lint_of(&ir, &run.result);
    let snap = Snapshot::build(&ir, &AnalysisConfig::default(), &run, &lint);
    (ir, snap)
}

#[test]
fn warm_replay_of_unchanged_suite_is_byte_identical() {
    for b in SUITE {
        let (ir, snap) = cold_snapshot(b.source);
        // Round-trip through text first: the warm path must work off
        // exactly what a file would hold.
        let snap = parse(&serialize(&snap)).expect("round-trip parses");
        let cold = analyze_recorded(&ir, AnalysisConfig::default()).unwrap();
        let inc = analyze_incremental(&ir, &AnalysisConfig::default(), Some(&snap)).unwrap();
        match &inc.mode {
            WarmMode::Warm {
                seed_hits, dirty, ..
            } => {
                assert!(dirty.is_empty(), "{}: nothing is dirty", b.name);
                assert!(*seed_hits > 0, "{}: expected warm hits", b.name);
            }
            WarmMode::Cold(r) => panic!("{}: unexpectedly cold: {r:?}", b.name),
        }
        // Identical source: the result must match id-for-id, not just
        // name-for-name.
        assert_eq!(
            inc.run.result.per_stmt, cold.result.per_stmt,
            "{}: per-statement facts differ",
            b.name
        );
        assert_eq!(inc.run.result.exit_set, cold.result.exit_set, "{}", b.name);
        assert_eq!(inc.run.result.warnings, cold.result.warnings, "{}", b.name);
        assert_eq!(inc.run.result.escapes, cold.result.escapes, "{}", b.name);
        assert_eq!(
            canonical_facts(&ir, &inc.run.result),
            canonical_facts(&ir, &cold.result),
            "{}: canonical facts differ",
            b.name
        );
        assert_eq!(
            lint_of(&ir, &inc.run.result),
            lint_of(&ir, &cold.result),
            "{}: lint findings differ",
            b.name
        );
    }
}

#[test]
fn single_function_edit_matches_cold_run_on_every_benchmark() {
    for b in SUITE {
        let (_, snap) = cold_snapshot(b.source);
        let Some(mutated) = perturb_source(b.source) else {
            panic!("{}: no return statement to perturb", b.name);
        };
        let ir2 = pta_simple::compile(&mutated).expect("mutated benchmark compiles");
        let cold = analyze_recorded(&ir2, AnalysisConfig::default()).unwrap();
        let inc = analyze_incremental(&ir2, &AnalysisConfig::default(), Some(&snap)).unwrap();
        match &inc.mode {
            WarmMode::Warm { dirty, .. } => {
                assert_eq!(dirty.len(), 1, "{}: exactly one function edited", b.name);
            }
            WarmMode::Cold(r) => panic!("{}: unexpectedly cold: {r:?}", b.name),
        }
        assert_eq!(
            canonical_facts(&ir2, &inc.run.result),
            canonical_facts(&ir2, &cold.result),
            "{}: incremental facts differ from cold after edit",
            b.name
        );
        assert_eq!(
            lint_of(&ir2, &inc.run.result),
            lint_of(&ir2, &cold.result),
            "{}: lint differs after edit",
            b.name
        );
    }
}

#[test]
fn snapshot_text_round_trips_and_verifies() {
    let b = SUITE[0];
    let (_, snap) = cold_snapshot(b.source);
    let text = serialize(&snap);
    let reparsed = parse(&text).expect("parses");
    assert_eq!(serialize(&reparsed), text, "serialization is idempotent");
    let summary = verify(&text).expect("verifies");
    assert!(summary.functions > 0 && summary.nodes > 0 && summary.pairs > 0);
}

#[test]
fn every_single_byte_corruption_degrades_cleanly() {
    let b = SUITE[1];
    let (ir, snap) = cold_snapshot(b.source);
    let text = serialize(&snap);
    let bytes = text.as_bytes();
    // Sample positions across the whole file (header, checksum, every
    // section) and flip one byte at each.
    let step = (bytes.len() / 97).max(1);
    for pos in (0..bytes.len()).step_by(step) {
        let mut damaged = bytes.to_vec();
        damaged[pos] = if damaged[pos] == b'0' { b'1' } else { b'0' };
        let Ok(damaged) = String::from_utf8(damaged) else {
            continue;
        };
        match parse(&damaged) {
            // A flip that leaves the text parseable must have been
            // semantically neutral is impossible: the checksum covers
            // the payload and the header covers itself.
            Ok(_) => panic!("byte flip at {pos} went undetected"),
            Err(e) => {
                // The orchestration layer turns any of these into a
                // cold run.
                let inc = analyze_incremental(&ir, &AnalysisConfig::default(), None).unwrap();
                assert!(matches!(inc.mode, WarmMode::Cold(ColdReason::NoSnapshot)));
                drop(e);
            }
        }
    }
}

#[test]
fn version_config_and_skeleton_mismatches_fall_back_cold() {
    let b = SUITE[2];
    let (ir, snap) = cold_snapshot(b.source);

    // Foreign schema version.
    let text = serialize(&snap).replacen(pta_core::SCHEMA_VERSION, "pta.v0", 1);
    assert!(matches!(parse(&text), Err(StoreError::Version { .. })));

    // Changed configuration: warm start refuses, incremental goes cold.
    let mut other = AnalysisConfig::default();
    other.max_sym_depth += 1;
    assert!(matches!(
        pta_store::warm_start(&ir, &other, &snap),
        Err(StoreError::Config)
    ));
    let inc = analyze_incremental(&ir, &other, Some(&snap)).unwrap();
    assert!(matches!(
        inc.mode,
        WarmMode::Cold(ColdReason::Store(StoreError::Config))
    ));

    // Changed skeleton (new global): same story.
    let grown = format!("int __pta_new_global;\n{}", b.source);
    let ir3 = pta_simple::compile(&grown).unwrap();
    let inc = analyze_incremental(&ir3, &AnalysisConfig::default(), Some(&snap)).unwrap();
    assert!(matches!(
        inc.mode,
        WarmMode::Cold(ColdReason::Store(StoreError::Skeleton))
    ));
}

#[test]
fn reload_supports_queries_without_reanalysis() {
    let b = SUITE[0];
    let (ir, snap) = cold_snapshot(b.source);
    let result = pta_store::reload_result(&snap).expect("reloads");
    let fresh = analyze_recorded(&ir, AnalysisConfig::default()).unwrap();
    assert_eq!(result.per_stmt, fresh.result.per_stmt);
    assert_eq!(result.exit_set, fresh.result.exit_set);
    assert_eq!(snap.diagnostics(), lint_of(&ir, &fresh.result));
}
