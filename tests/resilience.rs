//! Resource budgets and the degradation ladder, end to end: every
//! `AnalysisError` budget variant trips on a minimal program, trip
//! points carry usable provenance, and falling down the ladder loses
//! precision but never answers.

use pta::core::{analyze_resilient, analyze_with, stats, AnalysisConfig, AnalysisError, Fidelity};
use std::collections::BTreeSet;
use std::time::Duration;

/// Two pointers with distinct targets: any per-statement set reaches
/// two pairs, and a call gives the invocation graph a second node.
const SMALL: &str = "int x, y;
     void set(int **p, int *v) { *p = v; }
     int main(void) { int *a; int *b; a = &x; b = &y; set(&a, &y); return *a; }";

fn config() -> AnalysisConfig {
    AnalysisConfig::default()
}

#[test]
fn step_budget_trips_with_provenance() {
    let ir = pta::simple::compile(SMALL).unwrap();
    let err = analyze_with(
        &ir,
        AnalysisConfig {
            max_steps: 1,
            ..config()
        },
    )
    .unwrap_err();
    let AnalysisError::StepBudget { limit: 1, at } = &err else {
        panic!("expected StepBudget, got {err:?}");
    };
    // The trip point names the function being analysed.
    assert!(!at.function.is_empty());
    assert!(err.to_string().contains("max_steps"), "{err}");
}

#[test]
fn deadline_trips_immediately_at_zero() {
    let ir = pta::simple::compile(SMALL).unwrap();
    let err = analyze_with(
        &ir,
        AnalysisConfig {
            deadline: Some(Duration::ZERO),
            ..config()
        },
    )
    .unwrap_err();
    assert!(matches!(err, AnalysisError::Deadline { .. }), "{err:?}");
    assert!(err.to_string().contains("deadline"), "{err}");
}

#[test]
fn pt_pair_budget_trips_on_a_two_pair_set() {
    let ir = pta::simple::compile(SMALL).unwrap();
    let err = analyze_with(
        &ir,
        AnalysisConfig {
            max_pt_pairs: 1,
            ..config()
        },
    )
    .unwrap_err();
    let AnalysisError::PtBudget { limit: 1, size, .. } = &err else {
        panic!("expected PtBudget, got {err:?}");
    };
    assert!(*size > 1);
    assert!(err.to_string().contains("max_pt_pairs"), "{err}");
}

#[test]
fn ig_budget_trips_on_the_second_node() {
    let ir = pta::simple::compile(SMALL).unwrap();
    let err = analyze_with(
        &ir,
        AnalysisConfig {
            max_ig_nodes: 1,
            ..config()
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, AnalysisError::IgBudget { limit: 1, .. }),
        "{err:?}"
    );
    assert!(err.to_string().contains("max_ig_nodes"), "{err}");
}

#[test]
fn map_depth_budget_trips_on_a_deep_chain() {
    let src = pta_prop::cgen::deep_chain(6);
    let ir = pta::simple::compile(&src).unwrap();
    let err = analyze_with(
        &ir,
        AnalysisConfig {
            max_map_depth: 1,
            ..config()
        },
    )
    .unwrap_err();
    let AnalysisError::MapDepthBudget { limit: 1, at } = &err else {
        panic!("expected MapDepthBudget, got {err:?}");
    };
    assert!(!at.function.is_empty());
    assert!(err.to_string().contains("max_map_depth"), "{err}");
}

#[test]
fn every_budget_error_is_recoverable_and_kinded() {
    let ir = pta::simple::compile(SMALL).unwrap();
    let deep = pta::simple::compile(&pta_prop::cgen::deep_chain(6)).unwrap();
    let cases: Vec<AnalysisError> = vec![
        analyze_with(
            &ir,
            AnalysisConfig {
                max_steps: 1,
                ..config()
            },
        )
        .unwrap_err(),
        analyze_with(
            &ir,
            AnalysisConfig {
                deadline: Some(Duration::ZERO),
                ..config()
            },
        )
        .unwrap_err(),
        analyze_with(
            &ir,
            AnalysisConfig {
                max_pt_pairs: 1,
                ..config()
            },
        )
        .unwrap_err(),
        analyze_with(
            &ir,
            AnalysisConfig {
                max_ig_nodes: 1,
                ..config()
            },
        )
        .unwrap_err(),
        analyze_with(
            &deep,
            AnalysisConfig {
                max_map_depth: 1,
                ..config()
            },
        )
        .unwrap_err(),
    ];
    for e in cases {
        assert!(e.is_recoverable(), "{e:?} should be recoverable");
        assert!(e.budget_kind().is_some(), "{e:?} should carry its kind");
    }
}

// ---------------------------------------------------------------------
// Degradation ladder precision: coarser, never wrong
// ---------------------------------------------------------------------

/// The exit-of-main points-to pairs as (source name, target name),
/// definiteness erased — the common currency across engines.
fn exit_pair_names(result: &pta::core::AnalysisResult) -> BTreeSet<(String, String)> {
    result
        .exit_set
        .iter()
        .filter(|(_, t, _)| !result.locs.is_null(*t))
        .map(|(s, t, _)| {
            (
                result.locs.name(s).to_owned(),
                result.locs.name(t).to_owned(),
            )
        })
        .collect()
}

#[test]
fn ladder_fallback_is_a_superset_of_the_full_analysis() {
    for name in ["hash", "travel", "fixoutput"] {
        let b = pta::benchsuite::benchmark(name).unwrap();
        let ir = pta::simple::compile(b.source).unwrap();
        let full = analyze_with(&ir, config()).unwrap();
        let out = analyze_resilient(
            &ir,
            AnalysisConfig {
                max_steps: 25,
                ..config()
            },
        )
        .unwrap();
        assert!(!out.fidelity.is_full(), "{name}: budget should trip");
        let cs = exit_pair_names(&full);
        let fb = exit_pair_names(&out.result);
        for pair in &cs {
            assert!(
                fb.contains(pair),
                "{name} [{}]: fallback lost pair {pair:?}",
                out.fidelity
            );
        }
    }
}

#[test]
fn ladder_fallback_precision_is_no_better_than_full() {
    // E11's metric: average non-NULL targets per indirect reference.
    // A sound fallback may only equal or exceed the full analysis.
    for name in ["hash", "travel"] {
        let b = pta::benchsuite::benchmark(name).unwrap();
        let ir = pta::simple::compile(b.source).unwrap();
        let mut full = analyze_with(&ir, config()).unwrap();
        let full_avg = stats::table3(name, &ir, &mut full).avg();
        let out = analyze_resilient(
            &ir,
            AnalysisConfig {
                max_steps: 25,
                ..config()
            },
        )
        .unwrap();
        let mut degraded = out.result;
        let degraded_avg = stats::table3(name, &ir, &mut degraded).avg();
        assert!(
            degraded_avg >= full_avg - 1e-9,
            "{name}: degraded avg {degraded_avg} < full avg {full_avg}"
        );
    }
}

// ---------------------------------------------------------------------
// The checked-in stress case from the acceptance criteria
// ---------------------------------------------------------------------

#[test]
fn checked_in_stress_case_degrades_gracefully() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/programs/stress_knot.c"
    ))
    .unwrap();
    let (pta, fidelity, degradations) = pta::core::run_source_resilient(
        &src,
        AnalysisConfig {
            max_steps: 8,
            deadline: Some(Duration::from_secs(10)),
            ..config()
        },
    )
    .unwrap();
    assert!(!fidelity.is_full(), "tight budget should force a fallback");
    assert!(!degradations.is_empty());
    assert!(matches!(
        degradations[0].1.budget_kind(),
        Some(pta::core::BudgetKind::Steps)
    ));
    // The fallback still resolves the function pointer somewhere.
    assert!(!pta.result.exit_set.is_empty());
    // And with generous budgets the same program completes at full
    // precision — the stress case is pathological only under pressure.
    let (_, full_fidelity, _) = pta::core::run_source_resilient(&src, config()).unwrap();
    assert_eq!(full_fidelity, Fidelity::ContextSensitive);
}
