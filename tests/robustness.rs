//! Tier-1 fault-injection guarantees: every numbered fault in the save
//! path leaves an old-or-new loadable snapshot on disk (never a torn
//! one), injected load faults degrade an incremental run to a cold run
//! with identical facts, and a seeded chaos run of the hardened server
//! comes back clean with store faults armed.
//!
//! Fault arming is process-global (`pta_store::fault`), so every test
//! that arms a plan holds [`FAULT_LOCK`] for its whole body. The unit
//! suites never arm; these tests serialize among themselves.

use pta_core::analysis::AnalysisConfig;
use pta_core::Fidelity;
use pta_lint::{lint_ir, LintOptions};
use pta_store::fault::{self, FaultPlan};
use pta_store::{analyze_incremental, canonical_facts, load, save, serialize, Snapshot, WarmMode};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Serializes arming tests; survives a poisoned lock from an earlier
/// assertion failure so later tests still report their own result.
fn fault_lock() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const OLD: &str = "int x; int main(void) { int *p; p = &x; return *p; }";
const NEW: &str = "int x, y;
     void set(int **p, int *v) { *p = v; }
     int main(void) { int *a; a = &x; set(&a, &y); return *a; }";

fn snapshot_of(source: &str) -> Snapshot {
    let ir = pta_simple::compile(source).expect("source compiles");
    let config = AnalysisConfig::default();
    let inc = analyze_incremental(&ir, &config, None).expect("source analyses");
    let lint = lint_ir(
        &ir,
        &inc.run.result,
        Fidelity::ContextSensitive,
        &LintOptions::default(),
    );
    Snapshot::build(&ir, &config, &inc.run, &lint)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pta-robust-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn assert_no_tempfile_debris(dir: &std::path::Path, context: &str) {
    for entry in std::fs::read_dir(dir).expect("read scratch dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        assert!(
            !name.contains(".tmp."),
            "{context}: tempfile debris left behind: {name}"
        );
    }
}

#[test]
fn every_save_fault_point_leaves_an_old_or_new_loadable_snapshot() {
    let _guard = fault_lock();
    fault::disarm();
    let s_old = snapshot_of(OLD);
    let s_new = snapshot_of(NEW);
    let old_text = serialize(&s_old);
    let new_text = serialize(&s_new);
    let dir = scratch("save-faults");
    let path = dir.join("prog.ptas");
    // Every save-path point, plus the torn-write mode on the write
    // point. `5` (dirsync) fires after the rename lands, so the save
    // may legitimately report success there.
    for spec in ["1", "2", "2:trunc", "3", "4", "5"] {
        save(&path, &s_old).expect("clean save of the old snapshot");
        let plan = FaultPlan::parse(spec).expect("valid plan");
        fault::arm(plan);
        let saved = save(&path, &s_new);
        fault::disarm();
        if spec != "5" {
            assert!(saved.is_err(), "plan {spec}: injected fault must surface");
        }
        let text = std::fs::read_to_string(&path).expect("target file survives");
        assert!(
            text == old_text || text == new_text,
            "plan {spec}: on-disk snapshot is neither the old nor the new bytes"
        );
        load(&path).unwrap_or_else(|e| panic!("plan {spec}: snapshot must stay loadable: {e}"));
        assert_no_tempfile_debris(&dir, &format!("plan {spec}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_load_faults_degrade_to_a_cold_run_with_identical_facts() {
    let _guard = fault_lock();
    fault::disarm();
    let ir = pta_simple::compile(NEW).expect("source compiles");
    let config = AnalysisConfig::default();
    let dir = scratch("load-faults");
    let path = dir.join("prog.ptas");
    save(&path, &snapshot_of(NEW)).expect("clean save");
    let cold = analyze_incremental(&ir, &config, None).expect("cold run");
    let cold_facts = canonical_facts(&ir, &cold.run.result);
    // A hard read failure and a torn (half-truncated) read: both must
    // surface as a load error, and the serving flow — fall back to no
    // snapshot — must land on the same answer as a cold run.
    for spec in ["6", "6:trunc"] {
        fault::arm(FaultPlan::parse(spec).expect("valid plan"));
        let loaded = load(&path);
        fault::disarm();
        assert!(
            loaded.is_err(),
            "plan {spec}: injected load fault must surface"
        );
        let inc = analyze_incremental(&ir, &config, loaded.ok().as_ref()).expect("degraded run");
        assert!(
            matches!(inc.mode, WarmMode::Cold(_)),
            "plan {spec}: expected a cold fallback, got {:?}",
            inc.mode
        );
        assert_eq!(
            canonical_facts(&ir, &inc.run.result),
            cold_facts,
            "plan {spec}: degraded run must match the cold facts"
        );
    }
    // Disarmed, the same snapshot warms the run again.
    let warm = analyze_incremental(&ir, &config, load(&path).ok().as_ref()).expect("warm run");
    assert!(
        matches!(warm.mode, WarmMode::Warm { .. }),
        "clean reload should warm-start, got {:?}",
        warm.mode
    );
    assert_eq!(canonical_facts(&ir, &warm.run.result), cold_facts);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_seeded_chaos_run_with_store_faults_is_clean() {
    // The chaos harness arms store faults in its fifth phase, so it
    // shares the process-global lock with the tests above. Phase 6
    // (SIGKILL-during-save) needs a victim executable and is exercised
    // by the `pta-chaos` binary in CI, not here.
    let _guard = fault_lock();
    fault::disarm();
    let cfg = pta_prop::chaos::ChaosConfig {
        seed: 0x0b57_ac1e,
        kill_conns: 2,
        dribbles: 1,
        garbage: 3,
        store_faults: true,
        kill_saves: 0,
        victim_exe: None,
    };
    let report = pta_prop::chaos::run_chaos(&cfg).expect("chaos harness sets up");
    assert!(
        report.is_clean(),
        "chaos run not clean:\n{}",
        report.render()
    );
}
