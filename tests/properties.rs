//! Property-based tests (pta-prop) over the core data structures and
//! the analysis pipeline.

use pta::core::points_to_set::{merge_flow, Def, PtSet};
use pta::core::LocId;
use pta_prop::{check, Rng};

// ---------------------------------------------------------------------
// PtSet lattice laws
// ---------------------------------------------------------------------

fn arb_def(g: &mut Rng) -> Def {
    if g.ratio(1, 2) {
        Def::D
    } else {
        Def::P
    }
}

fn arb_ptset(g: &mut Rng) -> PtSet {
    let mut s = PtSet::new();
    for _ in 0..g.usize(0..24) {
        let a = g.u32(0..12);
        let b = g.u32(0..12);
        let d = arb_def(g);
        // insert_weak keeps arbitrary mixes consistent.
        s.insert_weak(LocId(a), LocId(b), d);
    }
    s
}

#[test]
fn merge_is_commutative() {
    check("merge commutes", 256, |g| {
        let (a, b) = (arb_ptset(g), arb_ptset(g));
        assert_eq!(a.merge(&b), b.merge(&a));
    });
}

#[test]
fn merge_is_associative() {
    check("merge associates", 256, |g| {
        let (a, b, c) = (arb_ptset(g), arb_ptset(g), arb_ptset(g));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    });
}

#[test]
fn merge_is_idempotent() {
    check("merge idempotent", 256, |g| {
        let a = arb_ptset(g);
        assert_eq!(a.merge(&a), a);
    });
}

#[test]
fn merge_is_an_upper_bound() {
    check("merge upper bound", 256, |g| {
        let (a, b) = (arb_ptset(g), arb_ptset(g));
        let m = a.merge(&b);
        assert!(a.subset_of(&m), "a ⊄ merge");
        assert!(b.subset_of(&m), "b ⊄ merge");
    });
}

#[test]
fn subset_is_reflexive() {
    check("subset reflexive", 256, |g| {
        let a = arb_ptset(g);
        assert!(a.subset_of(&a));
    });
}

#[test]
fn subset_is_transitive() {
    check("subset transitive", 256, |g| {
        let (a, b, c) = (arb_ptset(g), arb_ptset(g), arb_ptset(g));
        let ab = a.merge(&b);
        let abc = ab.merge(&c);
        assert!(a.subset_of(&ab));
        assert!(ab.subset_of(&abc));
        assert!(a.subset_of(&abc));
    });
}

#[test]
fn flow_merge_has_bottom_identity() {
    check("flow bottom identity", 256, |g| {
        let a = arb_ptset(g);
        assert_eq!(merge_flow(Some(a.clone()), None), Some(a.clone()));
        assert_eq!(merge_flow(None, Some(a.clone())), Some(a));
    });
}

#[test]
fn kill_removes_all_pairs_from_source() {
    check("kill clears source", 256, |g| {
        let mut s = arb_ptset(g);
        let src = g.u32(0..12);
        s.kill_from(LocId(src));
        assert_eq!(s.target_count(LocId(src)), 0);
    });
}

#[test]
fn demote_leaves_no_definite_pairs() {
    check("demote leaves only P", 256, |g| {
        let mut s = arb_ptset(g);
        let src = g.u32(0..12);
        s.demote_from(LocId(src));
        for (_, d) in s.targets(LocId(src)) {
            assert_eq!(d, Def::P);
        }
    });
}

#[test]
fn merged_pair_is_definite_only_if_definite_in_both() {
    check("merge definiteness", 256, |g| {
        let (a, b) = (arb_ptset(g), arb_ptset(g));
        let m = a.merge(&b);
        for (s, t, d) in m.iter() {
            if d == Def::D {
                assert_eq!(a.get(s, t), Some(Def::D));
                assert_eq!(b.get(s, t), Some(Def::D));
            }
        }
    });
}

// ---------------------------------------------------------------------
// Generated straight-line programs: the analysis terminates, maintains
// Definition 3.1, and is deterministic.
// ---------------------------------------------------------------------

/// Renders a random straight-line pointer program with `n` statements
/// over ints x0..x3, pointers p0..p3, and double pointers q0..q1.
fn render_program(stmts: &[u8]) -> String {
    let mut body = String::new();
    for (i, op) in stmts.iter().enumerate() {
        let s = match op % 12 {
            0 => format!("p{} = &x{};", op % 4, (op / 4) % 4),
            1 => format!("p{} = p{};", op % 4, (op / 4) % 4),
            2 => format!("q{} = &p{};", op % 2, (op / 4) % 4),
            3 => format!("*q{} = &x{};", op % 2, (op / 4) % 4),
            4 => format!("p{} = *q{};", op % 4, op % 2),
            5 => format!("if (c{}) p{} = &x{};", i % 3, op % 4, (op / 4) % 4),
            6 => format!("p{} = 0;", op % 4),
            7 => format!("p{} = (int*) malloc(4);", op % 4),
            8 => format!(
                "while (c{}) {{ p{} = p{}; c{} = c{} - 1; }}",
                i % 3,
                op % 4,
                (op / 4) % 4,
                i % 3,
                i % 3
            ),
            9 => format!("q{} = &p{};", op % 2, op % 4),
            10 => format!("x{} = x{} + 1;", op % 4, (op / 4) % 4),
            _ => format!(
                "if (c{}) q{} = &p{}; else q{} = &p{};",
                i % 3,
                op % 2,
                op % 4,
                op % 2,
                (op / 3) % 4
            ),
        };
        body.push_str("    ");
        body.push_str(&s);
        body.push('\n');
    }
    format!(
        "int x0, x1, x2, x3;\nint c0, c1, c2;\n\
         int main(void) {{\n    int *p0; int *p1; int *p2; int *p3;\n    int **q0; int **q1;\n{body}    return 0;\n}}\n"
    )
}

fn arb_stmts(g: &mut Rng, max: usize) -> Vec<u8> {
    g.vec(1..max, |g| g.u8())
}

#[test]
fn random_programs_analyze_and_keep_definition_3_1() {
    check("definition 3.1 holds", 64, |g| {
        let stmts = arb_stmts(g, 30);
        let src = render_program(&stmts);
        let t = pta::analyze_c(&src).expect("generated program analyses");
        for set in t.result.per_stmt.values() {
            for src_loc in set.sources() {
                let d_count = set.targets(src_loc).filter(|(_, d)| *d == Def::D).count();
                assert!(d_count <= 1, "source with {d_count} definite targets");
            }
        }
    });
}

#[test]
fn random_programs_are_deterministic() {
    check("analysis deterministic", 32, |g| {
        let stmts = arb_stmts(g, 20);
        let src = render_program(&stmts);
        let a = pta::analyze_c(&src).expect("analyses");
        let b = pta::analyze_c(&src).expect("analyses");
        assert_eq!(a.result.exit_set, b.result.exit_set);
    });
}

#[test]
fn random_programs_context_sensitive_at_least_as_precise_as_andersen() {
    check("cs ⊆ andersen", 32, |g| {
        let stmts = arb_stmts(g, 20);
        let src = render_program(&stmts);
        let t = pta::analyze_c(&src).expect("analyses");
        let ir = pta::simple::compile(&src).expect("compiles");
        let and = pta::core::baseline::andersen(&ir).expect("andersen");
        // Every non-null pair in the context-sensitive exit set also
        // exists in Andersen's (coarser) solution — i.e. the precise
        // analysis never invents pairs the inclusion-based one misses.
        // (Both are sound, Andersen is flow-insensitive so it covers
        // every program point at once.)
        for (s, tgt, _) in t.result.exit_set.iter() {
            if t.result.locs.is_null(tgt) {
                continue;
            }
            let sname = t.result.locs.name(s);
            let tname = t.result.locs.name(tgt);
            let found = and
                .solution
                .iter()
                .any(|(s2, t2, _)| and.locs.name(s2) == sname && and.locs.name(t2) == tname);
            assert!(found, "pair ({sname},{tname}) missing from Andersen");
        }
    });
}

// ---------------------------------------------------------------------
// Front-end robustness: random token soup never panics.
// ---------------------------------------------------------------------

#[test]
fn frontend_never_panics_on_ascii_soup() {
    check("frontend total", 128, |g| {
        let s = g.ascii_soup(0..200);
        let _ = pta::cfront::frontend(&s); // must return, not panic
    });
}

#[test]
fn lexer_round_trips_identifiers() {
    check("ident round-trip", 128, |g| {
        let name = g.ident(13);
        if pta::cfront::token::Keyword::from_str(&name).is_some() {
            return; // keyword: lexes as a keyword token, skip
        }
        let toks = pta::cfront::lexer::lex(&name).unwrap();
        assert_eq!(toks.len(), 2); // ident + EOF
        match &toks[0].kind {
            pta::cfront::token::TokenKind::Ident(n) => assert_eq!(n, &name),
            other => panic!("unexpected token {other:?}"),
        }
    });
}

#[test]
fn lexer_round_trips_integers() {
    check("integer round-trip", 128, |g| {
        let v = g.u64(0..1_000_000_000) as i64;
        let toks = pta::cfront::lexer::lex(&v.to_string()).unwrap();
        match &toks[0].kind {
            pta::cfront::token::TokenKind::IntLit(x) => assert_eq!(*x, v),
            other => panic!("unexpected token {other:?}"),
        }
    });
}

// ---------------------------------------------------------------------
// Pipeline robustness: panics are bugs, errors are fine
// ---------------------------------------------------------------------

/// Runs the whole pipeline on `src` and asserts it returns (Ok or Err)
/// rather than panicking. This is the executable form of the panic-site
/// audit: every `unwrap`/`expect` left in `pta-cfront` and `pta-core`
/// is an internal invariant, so no input may reach one.
fn assert_no_panic(src: &str) {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = pta::core::run_source(src);
    }));
    assert!(caught.is_ok(), "pipeline panicked on input:\n{src}");
}

#[test]
fn pipeline_never_panics_on_ascii_soup() {
    check("no panic on soup", 256, |g| {
        assert_no_panic(&g.ascii_soup(0..400));
    });
}

#[test]
fn pipeline_never_panics_on_keyword_soup() {
    const WORDS: &[&str] = &[
        "int", "void", "*", "&", "(", ")", "{", "}", ";", ",", "=", "if", "while", "return",
        "struct", "x", "p", "main", "[", "]", "1", "malloc", ".", "->", "double", "for", "else",
        "switch", "case", "break", "0",
    ];
    check("no panic on keyword soup", 256, |g| {
        let n = g.usize(0..80);
        let src: Vec<&str> = (0..n).map(|_| *g.pick(WORDS)).collect();
        assert_no_panic(&src.join(" "));
    });
}

#[test]
fn pipeline_never_panics_on_mutated_valid_programs() {
    check("no panic on mutations", 128, |g| {
        let family = *g.pick(pta_prop::cgen::FAMILIES);
        let mut bytes = pta_prop::cgen::generate(family, g).into_bytes();
        for _ in 0..g.usize(1..8) {
            if bytes.is_empty() {
                break;
            }
            let i = g.usize(0..bytes.len());
            match g.usize(0..3) {
                0 => bytes[i] = b' ' + (g.next_u64() % 95) as u8,
                1 => {
                    bytes.remove(i);
                }
                _ => bytes.insert(i, b' ' + (g.next_u64() % 95) as u8),
            }
        }
        assert_no_panic(&String::from_utf8_lossy(&bytes));
    });
}

// ---------------------------------------------------------------------
// Liveness pruning: pruned ≡ exhaustive where it matters
// ---------------------------------------------------------------------

use pta::core::AnalysisConfig;
use pta::simple::{BasicStmt, CallTarget, IrFunction, Operand, StmtId, VarBase, VarRef};

/// Collects every variable reference a basic statement contains.
fn refs_of<'a>(b: &'a BasicStmt, out: &mut Vec<&'a VarRef>) {
    fn op<'a>(o: &'a Operand, out: &mut Vec<&'a VarRef>) {
        if let Operand::Ref(r) | Operand::AddrOf(r) = o {
            out.push(r);
        }
    }
    match b {
        BasicStmt::Copy { lhs, rhs } => {
            out.push(lhs);
            op(rhs, out);
        }
        BasicStmt::Unary { lhs, rhs, .. } => {
            out.push(lhs);
            op(rhs, out);
        }
        BasicStmt::Binary { lhs, a, b, .. } => {
            out.push(lhs);
            op(a, out);
            op(b, out);
        }
        BasicStmt::PtrArith { lhs, ptr, .. } => {
            out.push(lhs);
            out.push(ptr);
        }
        BasicStmt::Alloc { lhs, size } => {
            out.push(lhs);
            op(size, out);
        }
        BasicStmt::Call {
            lhs, target, args, ..
        } => {
            if let Some(l) = lhs {
                out.push(l);
            }
            if let CallTarget::Indirect(r) = target {
                out.push(r);
            }
            for a in args {
                op(a, out);
            }
        }
        BasicStmt::Return(v) => {
            if let Some(o) = v {
                op(o, out);
            }
        }
    }
}

/// The use points the pruned engine must preserve exactly: every bare
/// local pointer a statement dereferences (or calls through), with the
/// statement it happens at.
fn deref_uses(f: &IrFunction) -> Vec<(StmtId, String)> {
    let mut uses = Vec::new();
    let Some(body) = &f.body else { return uses };
    body.for_each_basic(&mut |b, id| {
        let mut refs = Vec::new();
        refs_of(b, &mut refs);
        for r in refs {
            if let VarRef::Deref { path, .. } = r {
                if let VarBase::Var(v) = path.base {
                    if path.projs.is_empty() {
                        uses.push((id, f.var(v).name.clone()));
                    }
                }
            }
        }
    });
    uses
}

#[test]
fn prune_liveness_preserves_use_point_and_exit_resolutions() {
    // `--prune-liveness` drops pairs for *dead* frame-local pointers
    // from the per-statement tables; any pointer actually read at a
    // statement is live there, so its resolution must be byte-identical
    // to the exhaustive engine's — as must the exit resolutions of
    // globals and parameters, which are never prunable.
    check("prune ≡ exhaustive", 24, |g| {
        let family = *g.pick(pta_prop::cgen::FAMILIES);
        let source = pta_prop::cgen::generate(family, g);
        let Ok(base) = pta::core::run_source_with(&source, AnalysisConfig::default()) else {
            return; // generator corner the pipeline rejects: vacuous case
        };
        let pruned = pta::core::run_source_with(
            &source,
            AnalysisConfig {
                prune_liveness: true,
                ..AnalysisConfig::default()
            },
        )
        .expect("pruned run must succeed when the exhaustive run does");
        // Globals and parameters are never prunable: exact at exit.
        for gl in &base.ir.globals {
            assert_eq!(
                base.exit_targets_of("main", &gl.name),
                pruned.exit_targets_of("main", &gl.name),
                "exit targets diverged for global `{}` in:\n{source}",
                gl.name,
            );
        }
        for (_, f) in base.ir.defined_functions() {
            for v in &f.vars[..f.n_params] {
                assert_eq!(
                    base.exit_targets_of(&f.name, &v.name),
                    pruned.exit_targets_of(&f.name, &v.name),
                    "exit targets diverged for param `{}::{}` in:\n{source}",
                    f.name,
                    v.name,
                );
            }
            for (stmt, var) in deref_uses(f) {
                assert_eq!(
                    base.targets_at(stmt, &f.name, &var),
                    pruned.targets_at(stmt, &f.name, &var),
                    "use-point targets diverged for `{}::{var}` in:\n{source}",
                    f.name,
                );
            }
        }
    });
}

#[test]
fn lint_output_is_deterministic_across_jobs_on_generated_programs() {
    // The dataflow-backed checks must not introduce any worker-count
    // dependence: a batch of generated files lints byte-identically
    // serial and parallel, JSON and text alike.
    check("lint determinism across jobs", 8, |g| {
        let inputs: Vec<pta::lint::FileInput> = (0..4)
            .map(|i| {
                let family = *g.pick(pta_prop::cgen::FAMILIES);
                pta::lint::FileInput {
                    path: format!("g{i}.c"),
                    source: pta_prop::cgen::generate(family, g),
                }
            })
            .collect();
        let config = AnalysisConfig::default();
        let opts = pta::lint::LintOptions::default();
        let base = pta::lint::lint_files(&inputs, &config, &opts, 1);
        let (base_text, base_json) = (pta::lint::render_text(&base), pta::lint::render_json(&base));
        for jobs in [2, 5, 8] {
            let got = pta::lint::lint_files(&inputs, &config, &opts, jobs);
            assert_eq!(
                base_text,
                pta::lint::render_text(&got),
                "text diverged at jobs={jobs}"
            );
            assert_eq!(
                base_json,
                pta::lint::render_json(&got),
                "json diverged at jobs={jobs}"
            );
        }
    });
}
