/* Golden program for the trace-layer tests. Deliberately recursive:
 * loop fixpoints always feed the body fresh inputs, so plain loops
 * never produce memo hits — recursion exercises the ordinary memo
 * path (via the recursive node's output-generalization rounds), the
 * approximate subset path, and map/unmap through &q. */
int x, y;

void set(int **p, int *v) { *p = v; }

void rec(int **p, int n) {
  set(p, &x);
  if (n) {
    rec(p, n - 1);
    set(p, &y);
  }
}

int main(void) {
  int *q;
  rec(&q, 2);
  return *q;
}
