/* The function pointer is never given a target, so the indirect call
 * has an empty (NULL-only) resolved target set. */
int main(void) {
    int (*fp)(void);
    return fp();
}
