/* The callee publishes the address of its own local through a global;
 * once `f` returns the pointer dangles. */
int *g;

void f(void) {
    int local;
    local = 1;
    g = &local;
}

int main(void) {
    f();
    return 0;
}
