/* The unprototyped function pointer definitely targets `add`, but the
 * call passes one argument where `add` takes two: a definite arity
 * mismatch. */
int add(int a, int b) {
    return a + b;
}

int main(void) {
    int (*fp)();
    fp = add;
    return fp(1);
}
