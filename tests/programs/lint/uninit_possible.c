/* `n` is initialized on only one branch, so the read may see
 * uninitialized storage on the other path: a warning. */
int x;

int main(void) {
    int n;
    if (x) {
        n = 1;
    }
    return n;
}
