/* `helper` is defined but no invocation path from `main` reaches it. */
int helper(int v) {
    return v + 1;
}

int main(void) {
    return 0;
}
