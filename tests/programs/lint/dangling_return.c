/* The callee returns the address of its own local: the classic
 * dangling stack pointer. */
int *f(void) {
    int local;
    local = 2;
    return &local;
}

int main(void) {
    int *p;
    p = f();
    return 0;
}
