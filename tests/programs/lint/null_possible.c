/* The pointer is assigned on only one branch, so NULL remains a
 * possible target at the dereference: a warning, not an error. */
int x;

int main(void) {
    int *p;
    if (x) {
        p = &x;
    }
    return *p;
}
