/* The heap cell is reachable only from `p`, a local dying when `main`
 * returns: a possible leak. */
int main(void) {
    int *p;
    p = (int *) malloc(4);
    *p = 1;
    return 0;
}
