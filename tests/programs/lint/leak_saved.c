/* A second (global) pointer keeps the heap cell reachable past the
 * overwrite, so nothing is lost: the linter must stay silent. */
int g;
int *keep;

int main(void) {
    int *p;
    p = (int *) malloc(4);
    keep = p;
    p = &g;
    return *p;
}
