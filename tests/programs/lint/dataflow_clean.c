/* Negative program for the dataflow checks: `n` is initialized on
 * every path before its read, every store is read later, and the heap
 * cell stays reachable through a global across the pointer overwrite.
 * The linter must stay silent. */
int g;
int *keep;

int main(void) {
    int n;
    int *p;
    if (g) {
        n = 1;
    } else {
        n = 2;
    }
    p = (int *) malloc(4);
    keep = p;
    *p = n;
    p = &g;
    return *p + n;
}
