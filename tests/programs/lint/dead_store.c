/* The second store to `n` wins on every path; the first value is
 * never read. */
int main(void) {
    int n;
    n = 1;
    n = 2;
    return n;
}
