/* A well-behaved pointer program: every pointer is initialized before
 * use, the function pointer has exactly one target with the right
 * arity, every function is reachable, and nothing leaks. The linter
 * must stay silent. */
int x;

int add_one(int v) {
    return v + 1;
}

void set(int **p, int *v) {
    *p = v;
}

int main(void) {
    int *q;
    int (*fp)(int);
    set(&q, &x);
    fp = add_one;
    return fp(*q);
}
