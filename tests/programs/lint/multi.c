/* Several findings in one translation unit: a possible NULL
 * dereference, a possible arity mismatch behind a two-target function
 * pointer, an unreachable function, and a heap-only-held-by-a-local
 * leak. */
int x;

int one(int a) {
    return a;
}

int two(int a, int b) {
    return a + b;
}

int orphan(void) {
    return 41;
}

int main(void) {
    int *p;
    int *h;
    int (*fp)();
    if (x) {
        fp = one;
    } else {
        fp = two;
    }
    if (x) {
        p = &x;
    }
    h = (int *) malloc(8);
    *h = *p;
    return fp(7);
}
