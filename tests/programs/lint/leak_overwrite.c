/* Reassigning the only pointer to the heap cell loses it
 * mid-function: a possible leak at the overwrite. */
int g;

int main(void) {
    int *p;
    p = (int *) malloc(4);
    *p = 1;
    p = &g;
    return *p;
}
