/* The dereferenced pointer is uninitialized (hence NULL in the
 * paper's model) on every path: a definite error. */
int main(void) {
    int *p;
    return *p;
}
