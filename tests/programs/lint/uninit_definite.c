/* `n` is read before any store on every path: a definite
 * uninitialized read, an error. */
int main(void) {
    int n;
    int m;
    m = n + 1;
    return m;
}
