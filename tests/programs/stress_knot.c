/* Checked-in stress case (from the pta-prop fnptr-knot generator):
 * a ring of functions re-targeting one global function pointer and
 * calling through it. Under a tight step budget the context-sensitive
 * analysis must degrade to a tagged fallback, not hang or panic. */
int n;
void (*fp)(void);
void k0(void) { if (n) { n = n - 1; fp(); } }
void k1(void) { if (n) { n = n - 1; fp = k0; fp(); } }
void k2(void) { if (n) { n = n - 1; fp = k1; fp(); } }
void k3(void) { if (n) { n = n - 1; fp = k2; fp(); } }
void k4(void) { if (n) { n = n - 1; fp = k3; fp(); } }
void k5(void) { if (n) { n = n - 1; fp = k4; fp(); } }
void k6(void) { if (n) { n = n - 1; fp = k5; fp(); } }
void k7(void) { if (n) { n = n - 1; fp = k6; fp(); } }
int main(void) { n = 16; fp = k7; fp(); return n; }
