//! Suite-level end-to-end assertions: every benchmark analyses; the
//! reproduced evaluation keeps the paper's qualitative shape.

use pta::benchsuite::{self, report};
use pta::core::stats;

#[test]
fn all_benchmarks_compile_lower_validate_and_analyze() {
    for b in benchsuite::all_benchmarks() {
        let a = benchsuite::analyse(b);
        assert!(a.is_ok(), "{}: {:?}", b.name, a.err());
        let a = a.unwrap();
        assert!(a.ir.total_basic_stmts() > 0, "{}", b.name);
        assert!(!a.result.per_stmt.is_empty(), "{}", b.name);
    }
}

#[test]
fn table5_heap_never_points_back_to_stack() {
    // The paper's key observation justifying the stack/heap split:
    // the Heap→Stack column is zero on the whole suite.
    for b in benchsuite::SUITE {
        let a = benchsuite::analyse(*b).unwrap();
        let t5 = stats::table5(b.name, &a.ir, &a.result);
        assert_eq!(t5.heap_to_stack, 0, "{}: {t5:?}", b.name);
    }
}

#[test]
fn suite_summary_matches_paper_shape() {
    let suite = report::run_suite();
    assert!(suite.is_clean(), "{}", suite.render_failures());
    let s = suite.summary();
    // Paper: overall average 1.13, per-program max 1.77. Our synthetic
    // suite is close to 1 for most programs; assert the same regime.
    assert!(s.overall_avg >= 1.0, "{s:?}");
    assert!(s.overall_avg < 2.5, "{s:?}");
    // A substantial fraction of indirect references resolves to one
    // definite target (paper: 28.8%).
    assert!(s.pct_definite > 10.0, "{s:?}");
    // Under the non-NULL assumption most references have one target.
    assert!(s.pct_single > 50.0, "{s:?}");
    // Some heap usage exists but stack pairs dominate.
    assert!(s.pct_heap > 0.0 && s.pct_heap < 60.0, "{s:?}");
}

#[test]
fn livc_invocation_graph_comparison() {
    let s = report::livc_study().expect("livc study");
    // The paper's structural facts.
    assert_eq!(s.total_functions, 82);
    assert_eq!(s.address_taken_functions, 72);
    assert_eq!(s.indirect_sites, 3);
    // Qualitative result: points-to-driven resolution gives a much
    // smaller invocation graph than either naive strategy (paper:
    // 203 vs 589 vs 619).
    assert!(s.precise_nodes * 2 < s.address_taken_nodes, "{s:?}");
    assert!(s.address_taken_nodes <= s.all_functions_nodes, "{s:?}");
    // The precise graph binds each of the 3 sites to exactly its 24
    // kernels plus the direct structure.
    assert!(s.precise_nodes >= 72 + 3, "{s:?}");
}

#[test]
fn context_sensitivity_preserves_definiteness() {
    // The ablation: definite information survives under the
    // context-sensitive analysis but degrades when contexts merge.
    let rows = report::ablation().expect("ablation");
    let mean_cs: f64 = rows.iter().map(|r| r.definite_cs).sum::<f64>() / rows.len() as f64;
    let mean_ci: f64 = rows.iter().map(|r| r.definite_ci).sum::<f64>() / rows.len() as f64;
    assert!(
        mean_cs > mean_ci + 5.0,
        "expected a definiteness gap: cs={mean_cs:.1}% ci={mean_ci:.1}%"
    );
    // And the context-sensitive analysis is never less precise on
    // average targets.
    for r in &rows {
        assert!(
            r.context_sensitive <= r.andersen + 1e-9,
            "{}: cs {} > andersen {}",
            r.name,
            r.context_sensitive,
            r.andersen
        );
    }
}

#[test]
fn invocation_graphs_stay_moderate() {
    // §6: "our approach of explicitly following call-chains is
    // practical for real programs of moderate size".
    let suite = report::run_suite();
    assert!(suite.is_clean(), "{}", suite.render_failures());
    for r in suite.analysed_rows() {
        let s = &r.stats;
        assert!(
            s.t6.ig_nodes < 2_000,
            "{}: invocation graph exploded ({} nodes)",
            s.t6.name,
            s.t6.ig_nodes
        );
    }
}

#[test]
fn analysis_is_deterministic() {
    // Two runs over the same benchmark give identical results (the
    // entire pipeline is BTreeMap-ordered).
    let b = benchsuite::benchmark("travel").unwrap();
    let a1 = benchsuite::analyse(b).unwrap();
    let a2 = benchsuite::analyse(b).unwrap();
    assert_eq!(a1.result.exit_set, a2.result.exit_set);
    assert_eq!(a1.result.per_stmt, a2.result.per_stmt);
    assert_eq!(a1.result.ig.len(), a2.result.ig.len());
}

#[test]
fn definiteness_invariant_holds_on_the_suite() {
    // Definition 3.1: a definite pair means both endpoints name exactly
    // one real location and the relation holds on all paths — so a
    // source can have at most one definite target in any single state.
    for b in benchsuite::all_benchmarks() {
        let a = benchsuite::analyse(b).unwrap();
        for (id, set) in &a.result.per_stmt {
            for src in set.sources() {
                let d_targets = set.targets(src).filter(|(_, d)| *d == pta::Def::D).count();
                assert!(
                    d_targets <= 1,
                    "{}@{id}: {} has {} definite targets",
                    b.name,
                    a.result.locs.name(src),
                    d_targets
                );
            }
        }
    }
}

#[test]
fn applications_run_on_the_whole_suite() {
    for b in benchsuite::all_benchmarks() {
        let mut a = benchsuite::analyse(b).unwrap();
        let ir = a.ir.clone();
        let reps = pta::apps::replaceable_refs(&ir, &mut a.result);
        let cg = pta::apps::call_graph(&ir, &a.result);
        let rw = pta::apps::stmt_rw_sets(&ir, &mut a.result);
        assert!(cg.edge_count() > 0, "{}", b.name);
        assert!(!rw.is_empty(), "{}", b.name);
        let _ = reps;
    }
}

#[test]
fn builder_constructed_ir_analyzes() {
    use pta::cfront::types::Type;
    use pta::simple::builder::ProgramBuilder;

    let mut b = ProgramBuilder::new();
    let x = b.global("x", Type::Int);
    let mut main = b.function("main", Type::Int);
    let p = main.local("p", Type::Int.ptr_to());
    main.assign_addr(p, x);
    let d = main.deref(p);
    main.ret_ref(d);
    let program = main.finish_entry();

    let result = pta::analyze(&program).expect("built IR analyzes");
    // p definitely points to x at exit.
    let pairs: Vec<(String, String)> = result
        .exit_set
        .iter()
        .filter(|(_, t, _)| !result.locs.is_null(*t))
        .map(|(s, t, _)| {
            (
                result.locs.name(s).to_owned(),
                result.locs.name(t).to_owned(),
            )
        })
        .collect();
    assert_eq!(pairs, vec![("p".to_string(), "x".to_string())]);
}

#[test]
fn prune_liveness_is_equivalence_preserving_on_the_suite() {
    // The pruned engine drops pairs for dead frame-local pointers.
    // Everything a caller or a query can still observe — globals,
    // parameters, every pointer actually read — must resolve exactly
    // as in the exhaustive engine, and the pruned exit set can only
    // shrink, never grow. The prune counters must show the mode
    // actually did work somewhere on the suite.
    use pta::core::AnalysisConfig;
    let mut pruned_somewhere = false;
    for b in benchsuite::SUITE {
        let Ok(base) = pta::core::run_source(b.source) else {
            continue; // resilient rows are covered by the suite tests
        };
        let pruned = pta::core::run_source_with(
            b.source,
            AnalysisConfig {
                prune_liveness: true,
                ..AnalysisConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: pruned run failed: {e}", b.name));
        assert!(pruned.result.prune.enabled, "{}: stats not enabled", b.name);
        pruned_somewhere |= pruned.result.prune.pruned_pairs > 0;
        // Globals and parameters are never prunable, so their exit
        // resolutions must be exact.
        for g in &base.ir.globals {
            assert_eq!(
                base.exit_targets_of("main", &g.name),
                pruned.exit_targets_of("main", &g.name),
                "{}: exit targets diverged for global `{}`",
                b.name,
                g.name,
            );
        }
        for (_, f) in base.ir.defined_functions() {
            for v in &f.vars[..f.n_params] {
                assert_eq!(
                    base.exit_targets_of(&f.name, &v.name),
                    pruned.exit_targets_of(&f.name, &v.name),
                    "{}: exit targets diverged for param `{}::{}`",
                    b.name,
                    f.name,
                    v.name,
                );
            }
        }
        // The pruned exit set may drop pairs whose source is a local
        // dead at exit (that is the mode's contract) but must never
        // invent a pair the exhaustive engine lacks.
        let named = |p: &pta::core::Pta| -> std::collections::BTreeSet<(String, String, bool)> {
            p.result
                .exit_set
                .iter()
                .map(|(s, t, d)| {
                    (
                        p.result.locs.name(s).to_owned(),
                        p.result.locs.name(t).to_owned(),
                        d == pta::core::Def::D,
                    )
                })
                .collect()
        };
        let (be, pe) = (named(&base), named(&pruned));
        assert!(
            pe.is_subset(&be),
            "{}: pruned exit set invented pairs: {:?}",
            b.name,
            pe.difference(&be).collect::<Vec<_>>()
        );
    }
    assert!(
        pruned_somewhere,
        "no benchmark had a single prunable pair: the mode is a no-op"
    );
}
