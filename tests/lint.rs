//! Golden tests for the `pta-lint` diagnostics over the checked-in
//! corpus in `tests/programs/lint/`: one program per check category,
//! one clean program the linter must stay silent on, and one program
//! mixing several findings. Each `<name>.c` has a `<name>.expected`
//! golden holding the exact rendered output.

use pta::core::{AnalysisConfig, Fidelity};
use pta::lint::{lint_files, render_json, render_text, FileInput, LintOptions, Severity};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/programs/lint")
}

/// The corpus as lint inputs, keyed by basename so goldens and output
/// are independent of the checkout location. Sorted for determinism.
fn corpus() -> Vec<FileInput> {
    let mut inputs: Vec<FileInput> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .map(|p| FileInput {
            path: p.file_name().unwrap().to_string_lossy().into_owned(),
            source: std::fs::read_to_string(&p).expect("corpus file"),
        })
        .collect();
    inputs.sort_by(|a, b| a.path.cmp(&b.path));
    assert!(inputs.len() >= 10, "expected a ~10-program corpus");
    inputs
}

#[test]
fn every_program_matches_its_golden() {
    for input in corpus() {
        let golden_path = corpus_dir().join(input.path.replace(".c", ".expected"));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));
        let reports = lint_files(
            std::slice::from_ref(&input),
            &AnalysisConfig::default(),
            &LintOptions::default(),
            1,
        );
        let got = render_text(&reports);
        assert_eq!(
            got, golden,
            "{}: diagnostics diverged from the golden",
            input.path
        );
    }
}

#[test]
fn no_orphan_goldens() {
    // Every .expected belongs to a .c — a renamed program must take its
    // golden along.
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir") {
        let p = entry.expect("dir entry").path();
        if p.extension().is_some_and(|e| e == "expected") {
            let src = p.with_extension("c");
            assert!(src.exists(), "golden without a program: {}", p.display());
        }
    }
}

#[test]
fn corpus_covers_all_eight_check_categories() {
    let reports = lint_files(
        &corpus(),
        &AnalysisConfig::default(),
        &LintOptions::default(),
        1,
    );
    let mut seen: Vec<&str> = reports
        .iter()
        .flat_map(|r| r.diagnostics.iter().map(|d| d.check_id))
        .collect();
    seen.sort_unstable();
    seen.dedup();
    for id in [
        "dangling-stack",
        "dead-store",
        "heap-escape",
        "heap-leak",
        "indirect-call",
        "null-deref",
        "uninit-read",
        "unreachable-fn",
    ] {
        assert!(seen.contains(&id), "corpus never triggers `{id}`: {seen:?}");
    }
}

#[test]
fn clean_programs_yield_zero_diagnostics() {
    // `clean.c` exercises the points-to checks; `dataflow_clean.c` and
    // `leak_saved.c` are the negatives for the dataflow-backed ones.
    for name in ["clean.c", "dataflow_clean.c", "leak_saved.c"] {
        let input = corpus()
            .into_iter()
            .find(|i| i.path == name)
            .unwrap_or_else(|| panic!("{name} in corpus"));
        let reports = lint_files(
            &[input],
            &AnalysisConfig::default(),
            &LintOptions::default(),
            1,
        );
        assert!(reports[0].error.is_none(), "{name}: {:?}", reports[0].error);
        assert_eq!(
            reports[0].fidelity,
            Some(Fidelity::ContextSensitive),
            "{name} should analyse at full precision"
        );
        assert!(
            reports[0].diagnostics.is_empty(),
            "false positives on {name}: {:?}",
            reports[0].diagnostics
        );
    }
}

#[test]
fn corpus_output_is_byte_identical_across_jobs() {
    let inputs = corpus();
    let config = AnalysisConfig::default();
    let opts = LintOptions::default();
    let baseline = lint_files(&inputs, &config, &opts, 1);
    let base_text = render_text(&baseline);
    let base_json = render_json(&baseline);
    for jobs in 2..=8 {
        let reports = lint_files(&inputs, &config, &opts, jobs);
        assert_eq!(
            base_text,
            render_text(&reports),
            "text diverged at jobs={jobs}"
        );
        assert_eq!(
            base_json,
            render_json(&reports),
            "json diverged at jobs={jobs}"
        );
    }
}

#[test]
fn degraded_corpus_runs_emit_only_possible_findings() {
    // A starvation budget forces the degradation ladder on programs
    // with calls; whatever the linter still reports must be capped at
    // warning severity, golden content notwithstanding.
    let config = AnalysisConfig {
        max_steps: 1,
        deadline: Some(Duration::from_secs(10)),
        ..AnalysisConfig::default()
    };
    let reports = lint_files(&corpus(), &config, &LintOptions::default(), 2);
    let mut saw_degraded = false;
    for r in &reports {
        assert!(r.error.is_none(), "{}: {:?}", r.path, r.error);
        if r.fidelity.is_some_and(|f| !f.is_full()) {
            saw_degraded = true;
            for d in &r.diagnostics {
                assert_ne!(
                    d.severity,
                    Severity::Error,
                    "{}: degraded run leaked an error: {d}",
                    r.path
                );
            }
        }
    }
    assert!(saw_degraded, "the starvation budget never tripped");
}
