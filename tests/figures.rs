//! Reproduction of the paper's worked figures as integration tests:
//! Figure 2 (invocation contexts), Figures 6/7 (function pointers),
//! Figures 8/9 (points-to pairs vs alias pairs).

use pta::prelude::*;

// ---------------------------------------------------------------------
// Figure 2: invocation graphs
// ---------------------------------------------------------------------

#[test]
fn figure_2a_every_chain_has_a_node() {
    // main calls g twice, g calls f: 5 nodes, f appears twice.
    let t = run_source(
        "int f(void){ return 0; }
         int g(void){ return f(); }
         int main(void){ g(); g(); return 0; }",
    )
    .unwrap();
    let r = t.result.ig.render(&t.ir);
    assert_eq!(r, "main\n  g\n    f\n  g\n    f\n");
}

#[test]
fn figure_2b_simple_recursion_unrolling() {
    let t = run_source(
        "int f(int n){ if (n) return f(n - 1); return 0; }
         int main(void){ return f(5); }",
    )
    .unwrap();
    let r = t.result.ig.render(&t.ir);
    assert_eq!(r, "main\n  f (R)\n    f (A)\n");
}

#[test]
fn figure_2c_simple_and_mutual_recursion() {
    let t = run_source(
        "int g(int n);
         int f(int n){ if (n > 2) return f(n - 1); return g(n); }
         int g(int n){ if (n) return f(n - 1); return 0; }
         int main(void){ return f(7); }",
    )
    .unwrap();
    let s = t.result.ig.stats();
    // f is both simply recursive (f->f) and mutually recursive via g.
    assert!(s.recursive >= 1, "{s:?}");
    assert!(s.approximate >= 2, "{s:?}");
    let r = t.result.ig.render(&t.ir);
    assert!(r.contains("f (R)"), "{r}");
}

// ---------------------------------------------------------------------
// Figures 6/7: function pointers
// ---------------------------------------------------------------------

const FIGURE6: &str = "
    int a,b,c;
    int *pa,*pb,*pc;
    int (*fp)();
    int cond;
    int bar();
    int foo() {
        pa = &a;
        if (cond)
            fp();
        return 0;
    }
    int bar() {
        pb = &b;
        return 0;
    }
    int main() {
        pc = &c;
        if (cond)
            fp = foo;
        else
            fp = bar;
        fp();
        return 0;
    }";

#[test]
fn figure_6_point_a_and_b_sets() {
    let t = run_source(FIGURE6).unwrap();
    // Point A (before the indirect call): fp possibly foo/bar, pc def c.
    let call = t.find_stmt("main", "(*fp)", 0).unwrap();
    let a = t.pairs_at(call);
    assert!(a.contains(&("fp".into(), "foo".into(), Def::P)));
    assert!(a.contains(&("fp".into(), "bar".into(), Def::P)));
    assert!(a.contains(&("pc".into(), "c".into(), Def::D)));
    // Point B (after): pa/pb possibly set, pc still definite.
    assert_eq!(t.exit_targets_of("main", "pa"), vec![("a".into(), Def::P)]);
    assert_eq!(t.exit_targets_of("main", "pb"), vec![("b".into(), Def::P)]);
    assert_eq!(t.exit_targets_of("main", "pc"), vec![("c".into(), Def::D)]);
}

#[test]
fn figure_6_points_c_and_d_have_definite_fp() {
    let t = run_source(FIGURE6).unwrap();
    // Inside each callee, fp is made to *definitely* point to it.
    let c = t.find_stmt("foo", "return", 0).unwrap();
    assert!(t.pairs_at(c).contains(&("fp".into(), "foo".into(), Def::D)));
    let d = t.find_stmt("bar", "return", 0).unwrap();
    assert!(t.pairs_at(d).contains(&("fp".into(), "bar".into(), Def::D)));
}

#[test]
fn figure_7_final_graph_has_recursion_through_fp() {
    let t = run_source(FIGURE6).unwrap();
    // fp() inside foo can call foo again → recursive/approximate pair.
    let s = t.result.ig.stats();
    assert!(s.recursive >= 1, "{s:?}");
    assert!(s.approximate >= 1, "{s:?}");
    // The call graph resolves both targets at the outer indirect site.
    let g = call_graph(&t.ir, &t.result);
    assert_eq!(g.callees("main"), vec!["bar", "foo"]);
}

// ---------------------------------------------------------------------
// Figures 8/9: alias pairs
// ---------------------------------------------------------------------

#[test]
fn figure_8_points_to_avoids_spurious_alias() {
    let t = run_source(
        "int main(void){ int **x; int *y; int z; int w;
           x = &y; y = &z; y = &w; return 0; }",
    )
    .unwrap();
    let ret = t.find_stmt("main", "return", 0).unwrap();
    let pairs = alias_pairs_at(&t.result, ret, 3);
    let has = |l: &str, r: &str| pairs.iter().any(|p| p.lhs == l && p.rhs == r);
    // Expected (Figure 8(a) S3): (*x,y), (*y,w), (**x,*y), (**x,w).
    assert!(has("*x", "y"));
    assert!(has("*y", "w"));
    assert!(has("**x", "*y"));
    assert!(has("**x", "w"));
    // Landi/Ryder's spurious (**x, z) is NOT generated.
    assert!(!has("**x", "z"), "{pairs:?}");
}

#[test]
fn figure_9_closure_is_conservative() {
    let t = run_source(
        "int c0;
         int main(void){ int **a; int *b; int c;
           if (c0) a = &b; else b = &c; return 0; }",
    )
    .unwrap();
    let ret = t.find_stmt("main", "return", 0).unwrap();
    // Points-to pairs at S3: (a,b,P), (b,c,P).
    let pt = t.pairs_at(ret);
    assert!(pt.contains(&("a".into(), "b".into(), Def::P)));
    assert!(pt.contains(&("b".into(), "c".into(), Def::P)));
    let pairs = alias_pairs_at(&t.result, ret, 3);
    // The closure produces the (documented) spurious (**a, c).
    assert!(
        pairs.iter().any(|p| p.lhs == "**a" && p.rhs == "c"),
        "{pairs:?}"
    );
}

// ---------------------------------------------------------------------
// Figure 3 / §4.1: mapping and unmapping worked examples
// ---------------------------------------------------------------------

#[test]
fn mapping_two_definite_pointers_to_one_invisible() {
    // §4.1's first observation: x and y both definitely point to the
    // invisible b — one symbolic name must represent it, and both
    // relationships stay definite.
    let t = run_source(
        "int *g1; int *g2;
         void peek(void) { int *t1; int *t2; t1 = g1; t2 = g2; }
         int main(void){ int b; g1 = &b; g2 = &b; peek(); return 0; }",
    )
    .unwrap();
    // Inside peek, both globals point (definitely) to the same symbolic.
    let last = t.find_stmt("peek", "t2 = g2", 0).unwrap();
    let pairs = t.pairs_at(last);
    let g1_t: Vec<&(String, String, Def)> = pairs.iter().filter(|(s, _, _)| s == "g1").collect();
    let g2_t: Vec<&(String, String, Def)> = pairs.iter().filter(|(s, _, _)| s == "g2").collect();
    assert_eq!(g1_t.len(), 1, "{pairs:?}");
    assert_eq!(g2_t.len(), 1, "{pairs:?}");
    assert_eq!(
        g1_t[0].1, g2_t[0].1,
        "one symbolic name per invisible: {pairs:?}"
    );
    assert_eq!(g1_t[0].2, Def::D);
    assert_eq!(g2_t[0].2, Def::D);
}

#[test]
fn unmapping_restores_caller_names() {
    // The callee writes through 1_p (the symbolic for main's q); after
    // unmapping, main sees q → x directly.
    let t = run_source(
        "int x;
         void deep(int **p) { *p = &x; }
         void mid(int **p) { deep(p); }
         int main(void){ int *q; mid(&q); return *q; }",
    )
    .unwrap();
    assert_eq!(t.exit_targets_of("main", "q"), vec![("x".into(), Def::D)]);
    // The map info stored on the IG nodes names the symbolics.
    let any_sym = t.result.ig.iter().any(|(_, n)| !n.map_info.is_empty());
    assert!(
        any_sym,
        "map information recorded on invocation-graph nodes"
    );
}
