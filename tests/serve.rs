//! Tier-1 guarantees of the multi-tenant query server: concurrent
//! socket clients get byte-identical answers for identical queries,
//! tenants route by `"program"` with LRU eviction and on-disk reload,
//! malformed input stays in-band on a live connection, and a corrupt
//! snapshot degrades to a cold build instead of failing the server.

use pta_core::AnalysisConfig;
use pta_store::server::serve;
use pta_store::{connect, parse_listen, ListenAddr, Listener, Router, TenantCache, TenantSpec};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const PROG_A: &str = "int x; int main(void) { int *p; p = &x; return *p; }";
const PROG_B: &str = "int y; int main(void) { int *q; q = &y; return *q; }";

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pta-serve-itest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn write_tenant(dir: &Path, name: &str, source: &str) -> TenantSpec {
    let src = dir.join(format!("{name}.c"));
    std::fs::write(&src, source).unwrap();
    TenantSpec::from_source(&src, dir)
}

/// Binds a TCP listener on an ephemeral port and serves `router` on a
/// background thread until the returned stop flag is raised.
fn spawn_server(router: Arc<Router>) -> (ListenAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let listener =
        Listener::bind(&parse_listen("127.0.0.1:0").unwrap()).expect("bind ephemeral port");
    let addr = listener.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            serve(&listener, &*router, &stop, false).expect("serve loop");
        })
    };
    (addr, stop, handle)
}

/// Writes all `lines`, half-closes, and returns the response lines.
fn roundtrip(addr: &ListenAddr, lines: &[&str]) -> Vec<String> {
    let mut conn = connect(addr).expect("connect");
    for line in lines {
        writeln!(conn, "{line}").unwrap();
    }
    conn.flush().unwrap();
    conn.shutdown_write().unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    text.lines().map(str::to_owned).collect()
}

#[test]
fn concurrent_clients_get_identical_answers_across_two_tenants() {
    let dir = tmpdir("concurrent");
    let a = write_tenant(&dir, "a", PROG_A);
    let b = write_tenant(&dir, "b", PROG_B);
    let cache = TenantCache::new(vec![a, b], 2, AnalysisConfig::default(), None);
    let router = Arc::new(Router::new(cache));
    let (addr, stop, handle) = spawn_server(Arc::clone(&router));

    let queries: Vec<String> = (0..8)
        .map(|i| {
            let (program, var) = if i % 2 == 0 { ("a", "p") } else { ("b", "q") };
            format!(
                "{{\"id\":{i},\"program\":\"{program}\",\"op\":\"points-to\",\
                 \"func\":\"main\",\"var\":\"{var}\"}}"
            )
        })
        .collect();

    // Four concurrent clients replay the full pipelined mix.
    let results: Vec<Vec<String>> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let queries = &queries;
                let addr = &addr;
                s.spawn(move || {
                    let lines: Vec<&str> = queries.iter().map(String::as_str).collect();
                    roundtrip(addr, &lines)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    for r in &results[1..] {
        assert_eq!(r, &results[0], "connections disagree");
    }
    assert_eq!(results[0].len(), queries.len());
    assert!(
        results[0][0].contains("\"name\":\"x\""),
        "{}",
        results[0][0]
    );
    assert!(
        results[0][1].contains("\"name\":\"y\""),
        "{}",
        results[0][1]
    );
    // Both tenants were built exactly once: every connection shared the
    // same resident snapshot Arcs.
    assert_eq!(router.cache().build_count(), 2);

    stop.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}

#[test]
fn malformed_lines_and_batches_stay_in_band_on_a_live_connection() {
    let dir = tmpdir("malformed");
    let a = write_tenant(&dir, "a", PROG_A);
    let cache = TenantCache::new(vec![a], 1, AnalysisConfig::default(), None);
    let router = Arc::new(Router::new(cache));
    let (addr, stop, handle) = spawn_server(router);

    let responses = roundtrip(
        &addr,
        &[
            "this is not json",
            "[{\"id\":1,\"op\":\"lint\"},{\"id\":2,\"op\":\"nope\"}]",
            "{\"id\":3,\"op\":\"points-to\",\"func\":\"main\",\"var\":\"p\"}",
        ],
    );
    assert_eq!(responses.len(), 3, "{responses:?}");
    // Parse error: in-band, null id, connection stays usable.
    assert!(
        responses[0].starts_with("{\"id\":null,\"ok\":false"),
        "{}",
        responses[0]
    );
    // Batch: one array line back, per-request errors inside it.
    assert!(
        responses[1].starts_with("[{\"id\":1,\"ok\":true"),
        "{}",
        responses[1]
    );
    assert!(
        responses[1].contains("{\"id\":2,\"ok\":false,\"error\":\"unknown op `nope`\"}"),
        "{}",
        responses[1]
    );
    // The connection survived both bad lines.
    assert!(responses[2].contains("\"name\":\"x\""), "{}", responses[2]);

    stop.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}

#[test]
fn lru_eviction_and_reload_over_the_socket() {
    let dir = tmpdir("lru");
    let a = write_tenant(&dir, "a", PROG_A);
    let b = write_tenant(&dir, "b", PROG_B);
    let a_src = a.source.clone();
    // Capacity 1 with two tenants: alternating queries force evictions.
    let cache = TenantCache::new(vec![a, b], 1, AnalysisConfig::default(), None);
    let router = Arc::new(Router::new(cache));
    let (addr, stop, handle) = spawn_server(Arc::clone(&router));

    let q_a = "{\"id\":1,\"program\":\"a\",\"op\":\"points-to\",\"func\":\"main\",\"var\":\"p\"}";
    let q_b = "{\"id\":2,\"program\":\"b\",\"op\":\"points-to\",\"func\":\"main\",\"var\":\"q\"}";
    let first = roundtrip(&addr, &[q_a, q_b, q_a]);
    assert_eq!(first.len(), 3);
    assert_eq!(first[0], first[2], "rebuild changed the answer");
    assert!(router.cache().eviction_count() >= 2, "no eviction happened");
    assert_eq!(router.cache().build_count(), 3);

    // Rewrite tenant `a` on disk; grow the file so the stamp moves even
    // under a coarse mtime clock. The next query must see the new facts
    // without a restart.
    std::fs::write(
        &a_src,
        "int x, zz; int main(void) { int *p; p = &zz; return *p; }",
    )
    .unwrap();
    let reloaded = roundtrip(&addr, &[q_a]);
    assert!(reloaded[0].contains("\"name\":\"zz\""), "{}", reloaded[0]);
    assert!(!reloaded[0].contains("\"name\":\"x\""), "{}", reloaded[0]);

    stop.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}

#[test]
fn corrupt_snapshot_degrades_to_cold_and_heals_on_disk() {
    let dir = tmpdir("corrupt");
    let a = write_tenant(&dir, "a", PROG_A);
    let store = a.store.clone();
    std::fs::write(&store, "garbage, not a pta.v1 snapshot").unwrap();
    let cache = TenantCache::new(vec![a], 1, AnalysisConfig::default(), None);
    let router = Arc::new(Router::new(cache));
    let (addr, stop, handle) = spawn_server(router);

    let responses = roundtrip(
        &addr,
        &["{\"id\":1,\"op\":\"points-to\",\"func\":\"main\",\"var\":\"p\"}"],
    );
    assert!(responses[0].contains("\"ok\":true"), "{}", responses[0]);
    assert!(responses[0].contains("\"name\":\"x\""), "{}", responses[0]);
    // The cold build saved a fresh, verifiable snapshot back.
    let healed = std::fs::read_to_string(&store).unwrap();
    assert!(pta_store::verify(&healed).is_ok());

    stop.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}

#[test]
fn unix_socket_transport_answers_one_tenant_without_program_field() {
    let dir = tmpdir("unix");
    let a = write_tenant(&dir, "a", PROG_A);
    let cache = TenantCache::new(vec![a], 1, AnalysisConfig::default(), None);
    let router = Arc::new(Router::new(cache));
    let sock = dir.join("pta.sock");
    let addr = parse_listen(&format!("unix:{}", sock.display())).unwrap();
    let listener = Listener::bind(&addr).expect("bind unix socket");
    let addr = listener.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            serve(&listener, &*router, &stop, false).expect("serve loop");
        })
    };

    // A plain request/response exchange without half-close: read one
    // line back per line written (pipelining flushes per response).
    let mut conn = connect(&addr).expect("connect over unix socket");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    writeln!(
        conn,
        "{{\"id\":7,\"op\":\"points-to\",\"func\":\"main\",\"var\":\"p\"}}"
    )
    .unwrap();
    conn.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"id\":7"), "{line}");
    assert!(line.contains("\"name\":\"x\""), "{line}");
    // Drop BOTH halves: `reader` holds a clone of the socket, and the
    // server's connection thread drains until it sees EOF.
    drop(reader);
    drop(conn);

    stop.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}
