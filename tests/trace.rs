//! Trace-layer integration tests (E13):
//!
//! 1. the golden JSONL trace of `tests/programs/trace_small.c` is
//!    reproduced byte-for-byte with scrubbed timings;
//! 2. every event kind the engine can emit is documented in
//!    `docs/TRACING.md` (the same contract `trace-check --docs`
//!    enforces in CI);
//! 3. one-source-of-truth: the invocation-graph statistics reported by
//!    the metrics layer reconcile exactly with the Table 6 pipeline
//!    (E5) on the whole benchmark suite.

use pta::benchsuite::report;
use pta::core::{run_source_traced, AnalysisConfig, JsonlSink, TraceMetrics, EVENT_SPECS};

const TRACE_SMALL: &str = include_str!("programs/trace_small.c");
const GOLDEN: &str = include_str!("programs/trace_small.jsonl");
const TRACING_DOC: &str = include_str!("../docs/TRACING.md");

#[test]
fn golden_trace_is_byte_stable() {
    let mut sink = JsonlSink::scrubbed();
    let (_, fidelity, degradations) =
        run_source_traced(TRACE_SMALL, AnalysisConfig::default(), &mut sink).expect("analysis ok");
    assert!(fidelity.is_full(), "golden run degraded: {degradations:?}");
    assert_eq!(
        sink.as_str(),
        GOLDEN,
        "regenerate with: pta trace tests/programs/trace_small.c --scrub-timings"
    );
}

#[test]
fn golden_trace_exercises_the_memoization_paths() {
    // The recursive shape of the golden program must keep covering the
    // interesting event kinds; a silent fixture change that loses the
    // memo-hit or approximate coverage should fail loudly here.
    for kind in [
        "analysis_start",
        "analysis_end",
        "ig_enter",
        "ig_exit",
        "memo_hit",
        "memo_miss",
        "approx_defer",
        "map",
        "unmap",
        "stmt",
    ] {
        assert!(
            GOLDEN.contains(&format!("{{\"ev\":\"{kind}\"")),
            "golden trace lost coverage of `{kind}`"
        );
    }
    // Scrubbed timings: no non-zero ts_us/dur_us survive.
    for line in GOLDEN.lines() {
        assert!(line.contains("\"ts_us\":0"), "unscrubbed line: {line}");
        assert!(!line.contains("\"dur_us\":1"), "unscrubbed line: {line}");
    }
}

#[test]
fn every_event_kind_is_documented() {
    for spec in EVENT_SPECS {
        let heading = format!("### `{}`", spec.kind);
        assert!(
            TRACING_DOC.contains(&heading),
            "docs/TRACING.md lacks a section for event kind `{}`",
            spec.kind
        );
        for field in spec.fields {
            assert!(
                TRACING_DOC.contains(&format!("`{field}`")),
                "docs/TRACING.md never mentions field `{}` of `{}`",
                field,
                spec.kind
            );
        }
    }
}

#[test]
fn e13_metrics_reconcile_with_table6() {
    // The metrics layer and the Table 6 statistics pipeline must agree
    // exactly: analysis_end carries `ig.stats()`, which is the same
    // source `stats::table6` reads, so any divergence means an event
    // was dropped or double-counted.
    let suite =
        report::run_benchmarks_opts(pta::benchsuite::SUITE, 2, AnalysisConfig::default(), true);
    assert!(suite.is_clean(), "{}", suite.render_failures());
    let mut seen = 0;
    for row in suite.analysed_rows() {
        let name = row.analysed.bench.name;
        let m = row
            .metrics
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: profiled run lost its metrics"));
        assert!(m.completed, "{name}: metrics never saw analysis_end");
        let t6 = &row.stats.t6;
        assert_eq!(m.ig_nodes, t6.ig_nodes, "{name}: IG node count diverged");
        assert_eq!(m.ig_recursive, t6.recursive, "{name}: recursive diverged");
        assert_eq!(
            m.ig_approximate, t6.approximate,
            "{name}: approximate diverged"
        );
        // Sanity on the derived counters: every enter is a miss (hits
        // return before entering), and per-function counters sum to
        // the whole-run ones.
        let func_hits: u64 = m.per_func.values().map(|f| f.memo_hits).sum();
        let func_misses: u64 = m.per_func.values().map(|f| f.memo_misses).sum();
        assert_eq!(func_hits, m.memo_hits, "{name}: per-function hit sum");
        assert_eq!(func_misses, m.memo_misses, "{name}: per-function miss sum");
        seen += 1;
    }
    assert_eq!(
        seen,
        pta::benchsuite::SUITE.len(),
        "suite rows went missing"
    );
}

#[test]
fn metrics_json_is_self_consistent() {
    let mut m = TraceMetrics::new();
    run_source_traced(TRACE_SMALL, AnalysisConfig::default(), &mut m).expect("analysis ok");
    let js = m.to_json();
    assert_eq!(
        js.matches('{').count(),
        js.matches('}').count(),
        "balanced: {js}"
    );
    // Deterministic counters only: no timing keys in the suite artifact.
    assert!(!js.contains("_us"), "timing leaked into metrics json: {js}");
    assert!(js.contains("\"completed\":true"), "{js}");
    assert!(js.contains("\"ig_nodes\":5"), "{js}");
}
