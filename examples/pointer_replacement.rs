//! The pointer-replacement transformation (§1/§6.1 of the paper):
//! definite points-to information lets `x = *q` become `x = y`.
//!
//! Run with `cargo run --example pointer_replacement`.

use pta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        struct config { int width; int height; int *mode; };
        int mode_flag;

        int area(void) {
            struct config c;
            struct config *pc;
            int w, h;
            pc = &c;                 /* pc definitely points to c      */
            c.width = 640;
            c.height = 480;
            c.mode = &mode_flag;
            w = pc->width;           /* replaceable by c.width         */
            h = pc->height;          /* replaceable by c.height        */
            return w * h + *c.mode;  /* *c.mode replaceable            */
        }

        int choose(int k, int *a, int *b) {
            int *sel;
            if (k) sel = a; else sel = b;
            return *sel;             /* NOT replaceable: two targets   */
        }

        int main(void) {
            int x, y;
            return area() + choose(1, &x, &y);
        }
    "#;

    let mut pta = run_source(source)?;
    let ir = pta.ir.clone();
    let replacements = replaceable_refs(&ir, &mut pta.result);

    println!("Replaceable indirect references:");
    for r in &replacements {
        println!("  {r}");
    }
    println!("\n{} replacement(s) found.", replacements.len());
    assert!(
        replacements
            .iter()
            .all(|r| r.function == "area" || r.function == "main"),
        "only definite single-target references replace"
    );
    Ok(())
}
