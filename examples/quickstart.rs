//! Quick start: analyse a small C program and inspect points-to facts.
//!
//! Run with `cargo run --example quickstart`.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        int x, y;

        void swap_targets(int **a, int **b) {
            int *t;
            t = *a;
            *a = *b;
            *b = t;
        }

        int main(void) {
            int *p;
            int *q;
            p = &x;
            q = &y;
            swap_targets(&p, &q);
            return *p + *q;
        }
    "#;

    let pta = pta::analyze_c(source)?;

    println!("After swap_targets(&p, &q):");
    for var in ["p", "q"] {
        let targets = pta.exit_targets_of("main", var);
        println!("  {var} points to {targets:?}");
    }

    // The whole merged points-to set at the end of main.
    if let Some(ret) = pta.find_stmt("main", "return", 0) {
        println!("\nAll pairs at the return of main:");
        for (src, tgt, def) in pta.pairs_at(ret) {
            println!("  ({src}, {tgt}, {def})");
        }
    }

    // The invocation graph (one node per calling context).
    println!("\nInvocation graph:");
    print!("{}", pta.result.ig.render(&pta.ir));

    Ok(())
}
