//! Points-to pairs vs traditional alias pairs — the programs of
//! Figures 8 and 9 of the paper (§7.1, comparison with Landi/Ryder).
//!
//! Run with `cargo run --example alias_pairs`.

use pta::prelude::*;

fn show(title: &str, source: &str) -> Result<(), Box<dyn std::error::Error>> {
    let pta = run_source(source)?;
    let ret = pta.find_stmt("main", "return", 0).expect("return stmt");
    println!("{title}");
    println!("  points-to pairs:");
    for (a, b, d) in pta.pairs_at(ret) {
        println!("    ({a}, {b}, {d})");
    }
    println!("  implied alias pairs (transitive closure):");
    for p in alias_pairs_at(&pta.result, ret, 3) {
        println!("    {p}");
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 8: the points-to abstraction avoids the spurious (**x, z)
    // that exhaustive alias pairs produce.
    show(
        "Figure 8 — x = &y; y = &z; y = &w;",
        "int main(void){ int **x; int *y; int z; int w;
           x = &y; y = &z; y = &w; return 0; }",
    )?;

    // Figure 9: here the closure *does* create a spurious (**a, c) —
    // the price of compactness the paper discusses.
    show(
        "Figure 9 — if (c) a = &b; else b = &c;",
        "int c0;
         int main(void){ int **a; int *b; int c;
           if (c0) a = &b; else b = &c; return 0; }",
    )?;
    Ok(())
}
