//! Compares the context-sensitive analysis against the baselines the
//! repository implements: context-insensitive, Andersen, Steensgaard,
//! and the naive call-graph strategies of §5.
//!
//! Run with `cargo run --example compare_baselines`.

use pta::core::baseline::{
    andersen, build_ig_with_strategy, insensitive, steensgaard, CallGraphStrategy,
};
use pta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        int x, y;

        void set(int **p, int *v) { *p = v; }

        int f1(void) { return 1; }
        int f2(void) { return 2; }
        int unused(void) { return 3; }
        int cond;

        int main(void) {
            int *a;
            int *b;
            int (*fp)(void);
            set(&a, &x);     /* context 1 */
            set(&b, &y);     /* context 2 */
            if (cond) fp = f1; else fp = f2;
            return fp() + *a + *b;
        }
    "#;

    let ir = compile(source)?;

    // 1. The paper's context-sensitive analysis.
    let pta = run_source(source)?;
    println!(
        "context-sensitive:   a -> {:?}",
        pta.exit_targets_of("main", "a")
    );
    println!(
        "                     b -> {:?}",
        pta.exit_targets_of("main", "b")
    );

    // 2. Context-insensitive: the two calls of `set` pollute each other.
    let ins = insensitive(&ir)?;
    let (main_id, mainf) = ir.function_by_name("main").expect("main");
    let a_idx = mainf
        .vars
        .iter()
        .position(|v| v.name == "a")
        .expect("var a");
    let a_loc = ins
        .locs
        .lookup(
            &pta::core::LocBase::Var(main_id, pta::simple::IrVarId(a_idx as u32)),
            &[],
        )
        .expect("a interned");
    let summary = ins.summaries.get(&main_id).cloned().unwrap_or_default();
    let a_targets: Vec<&str> = summary
        .targets(a_loc)
        .filter(|(t, _)| !ins.locs.is_null(*t))
        .map(|(t, _)| ins.locs.name(t))
        .collect();
    println!("context-insensitive: a -> {a_targets:?}  (polluted by the other call site)");

    // 3. Flow-insensitive baselines.
    let and = andersen(&ir)?;
    let a_loc2 = and
        .locs
        .lookup(
            &pta::core::LocBase::Var(main_id, pta::simple::IrVarId(a_idx as u32)),
            &[],
        )
        .expect("a interned");
    println!("andersen:            a -> {:?}", and.target_names(a_loc2));
    let st = steensgaard(&ir)?;
    println!("steensgaard:         {} storage classes", st.class_count());

    // 4. Function-pointer resolution strategies (§5).
    let precise = pta.result.ig.len();
    let all = build_ig_with_strategy(&ir, CallGraphStrategy::AllFunctions, 100_000)?.len();
    let at = build_ig_with_strategy(&ir, CallGraphStrategy::AddressTaken, 100_000)?.len();
    println!(
        "\ninvocation-graph size: points-to {precise} | address-taken {at} | all-functions {all}"
    );
    Ok(())
}
