//! The paper's Figure 6 example: resolving function-pointer calls
//! during the analysis, and the invocation graph it produces
//! (Figure 7).
//!
//! Run with `cargo run --example function_pointers`.

use pta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The program of Figure 6 (conditions made concrete variables).
    let source = r#"
        int a, b, c;
        int *pa, *pb, *pc;
        int (*fp)();
        int cond;

        int bar();

        int foo() {
            pa = &a;
            if (cond)
                fp();
            /* Point C */
            return 0;
        }

        int bar() {
            pb = &b;
            /* Point D */
            return 0;
        }

        int main() {
            pc = &c;
            if (cond)
                fp = foo;
            else
                fp = bar;
            /* Point A */
            fp();
            /* Point B */
            return 0;
        }
    "#;

    let pta = run_source(source)?;

    println!("Final points-to facts (Point B of Figure 6):");
    for var in ["fp", "pa", "pb", "pc"] {
        println!("  {var} -> {:?}", pta.exit_targets_of("main", var));
    }

    println!("\nInvocation graph (Figure 7(c)): note the recursive (R)");
    println!("and approximate (A) nodes created because foo's indirect");
    println!("call can reach foo again:\n");
    print!("{}", pta.result.ig.render(&pta.ir));

    println!("\nResolved call graph:");
    print!("{}", call_graph(&pta.ir, &pta.result).render());

    Ok(())
}
