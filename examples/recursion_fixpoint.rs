//! Recursion handling (§4.2, Figure 2): recursive and approximate
//! invocation-graph nodes and the fixed-point computation.
//!
//! Run with `cargo run --example recursion_fixpoint`.

use pta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Simple recursion, mutual recursion, and a pointer that changes
    // through the recursive calls.
    let source = r#"
        int x, y;

        void descend(int **pp, int n);

        void flip(int **pp, int n) {
            *pp = &y;
            if (n > 0)
                descend(pp, n - 1);
        }

        void descend(int **pp, int n) {
            *pp = &x;
            if (n > 0)
                flip(pp, n - 1);
        }

        int main(void) {
            int *p;
            p = &x;
            descend(&p, 10);
            return *p;
        }
    "#;

    let pta = run_source(source)?;

    println!("Invocation graph (R = recursive, A = approximate):\n");
    print!("{}", pta.result.ig.render(&pta.ir));

    let s = pta.result.ig.stats();
    println!(
        "\n{} nodes, {} recursive, {} approximate",
        s.nodes, s.recursive, s.approximate
    );

    println!(
        "\nAfter the recursion, p -> {:?}",
        pta.exit_targets_of("main", "p")
    );
    println!("(the fixed point merges every unrolling, so both targets are possible)");
    Ok(())
}
